//! Serving policy configuration: [`ServeConfig`], its validating
//! [`ServeConfigBuilder`], and the [`SchedulerPolicy`] that governs how
//! the strict Latency≻Bulk priority order is tempered by aging.

use crate::queue::Admission;
use cq_core::{BackendError, BackendSet, PsumKernel};
use std::fmt;
use std::time::Duration;

/// How the batch scheduler orders [`Slo::Latency`](crate::Slo) work
/// against [`Slo::Bulk`](crate::Slo) work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Strict priority: latency work always schedules before bulk work.
    /// Under a sustained latency flood, bulk requests can starve for the
    /// whole flood duration. The default.
    #[default]
    Strict,
    /// Strict priority **with aging**: once *any* queued bulk request's
    /// weighted age reaches `bulk_max_age`, the bulk class outranks new
    /// latency arrivals (and is served FIFO from its head), so bulk
    /// traffic has a provable starvation bound — every admitted bulk
    /// request is picked up within `bulk_max_age / weight` of submission,
    /// plus the sweep (or in-flight shard) a worker is already executing
    /// and the bulk requests queued ahead of it (bounded by
    /// [`ServeConfig::queue_capacity`]). The whole bulk deque is
    /// scanned — not just its head — so a fast-aging request queued
    /// behind a slow-aging one still trips the promotion on its own
    /// clock.
    ///
    /// A request's weighted age is `elapsed × weight` (see
    /// [`Request::weight`](crate::Request::weight)): weight `2.0` crosses
    /// the threshold twice as fast, weight `0.5` half as fast. Latency
    /// work keeps absolute priority until the threshold trips, so the
    /// latency-class p99 win over FIFO is preserved for any
    /// `bulk_max_age` larger than the latency burst scale.
    Aging {
        /// Weighted queue age at which a queued bulk request makes its
        /// class outrank new latency arrivals. Must be non-zero.
        bulk_max_age: Duration,
    },
}

impl SchedulerPolicy {
    /// The aging threshold, if this policy ages bulk work.
    pub fn bulk_max_age(&self) -> Option<Duration> {
        match self {
            SchedulerPolicy::Strict => None,
            SchedulerPolicy::Aging { bulk_max_age } => Some(*bulk_max_age),
        }
    }
}

/// Per-tenant scheduling weight and admission quotas, configured via
/// [`ServeConfigBuilder::tenant`]. Requests opt in with
/// [`Request::tenant`](crate::Request::tenant); untagged requests ride
/// the built-in `"default"` tenant (weight 1, no quotas).
///
/// ```
/// use cq_serve::TenantSpec;
/// let spec = TenantSpec::new("acme").weight(3.0).max_queued(32).max_in_flight(64);
/// assert_eq!(spec.weight, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name, matched against [`Request::tenant`](crate::Request::tenant).
    pub name: String,
    /// Weighted-fair share: under saturation each tenant's served-row
    /// share converges to `weight / Σ weights` of the active tenants.
    /// Must be finite and positive.
    pub weight: f32,
    /// Most requests this tenant may have **queued** (admitted, not yet
    /// scheduled) at once; the quota rejects with
    /// [`SubmitError::QuotaExceeded`](crate::SubmitError) — immediately,
    /// never blocking. `None` = unlimited.
    pub max_queued: Option<usize>,
    /// Most requests this tenant may have **in flight** (admitted, not
    /// yet fulfilled) at once. `None` = unlimited.
    pub max_in_flight: Option<usize>,
}

impl TenantSpec {
    /// A tenant with weight 1 and no quotas.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            weight: 1.0,
            max_queued: None,
            max_in_flight: None,
        }
    }

    /// Sets the weighted-fair share (validated by the config builder).
    pub fn weight(mut self, weight: f32) -> Self {
        self.weight = weight;
        self
    }

    /// Caps queued requests (admitted, not yet scheduled).
    pub fn max_queued(mut self, max: usize) -> Self {
        self.max_queued = Some(max);
        self
    }

    /// Caps in-flight requests (admitted, not yet fulfilled).
    pub fn max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = Some(max);
        self
    }
}

/// Why a [`ServeConfig`] was rejected, by the builder or by
/// [`CimServer::set_config`](crate::CimServer::set_config).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `min_workers` (or both worker bounds, via
    /// [`workers`](ServeConfigBuilder::workers)) was zero.
    ZeroWorkers,
    /// `max_workers` was below `min_workers`.
    WorkerBounds {
        /// The configured lower bound.
        min: usize,
        /// The configured (smaller) upper bound.
        max: usize,
    },
    /// Two [`TenantSpec`]s share a name, or one claims the built-in
    /// `"default"` tenant.
    DuplicateTenant(String),
    /// A tenant's weight was zero, negative, or non-finite.
    TenantWeight {
        /// The offending tenant.
        name: String,
        /// The rejected weight.
        weight: f32,
    },
    /// A tenant quota was `Some(0)` — it would reject every submission.
    ZeroTenantQuota(String),
    /// `queue_capacity` was zero.
    ZeroQueueCapacity,
    /// `max_batch` was `Some(0)`.
    ZeroMaxBatch,
    /// `shard_rows` was `Some(0)`.
    ZeroShardRows,
    /// `row_tile_shards` was `Some(0)`.
    ZeroRowTileShards,
    /// [`SchedulerPolicy::Aging`] carried a zero `bulk_max_age`.
    ZeroBulkMaxAge,
    /// A [`ServeConfig::scheme_allowlist`] entry was the empty string —
    /// it could never match a scheme name.
    EmptySchemeAllowlistEntry,
    /// [`CimServer::set_config`](crate::CimServer::set_config) was called
    /// while a serving session still holds the server's shared state.
    SessionActive,
    /// The configured [`ServeConfig::backends`] chain cannot execute some
    /// resident model layer (see [`BackendError`]) — e.g. a bare
    /// `BackendSet::int()` over a model frozen under device variation.
    Backend(BackendError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConfigError::ZeroWorkers => "need at least one worker",
            ConfigError::WorkerBounds { min, max } => {
                return write!(
                    f,
                    "max_workers ({max}) must be at least min_workers ({min})"
                )
            }
            ConfigError::DuplicateTenant(name) => {
                return write!(
                    f,
                    "tenant '{name}' configured twice (or shadows the built-in default tenant)"
                )
            }
            ConfigError::TenantWeight { name, weight } => {
                return write!(
                    f,
                    "tenant '{name}' weight must be finite and positive, got {weight}"
                )
            }
            ConfigError::ZeroTenantQuota(name) => {
                return write!(
                    f,
                    "tenant '{name}' has a zero quota — it would reject everything"
                )
            }
            ConfigError::ZeroQueueCapacity => "queue capacity must be positive",
            ConfigError::ZeroMaxBatch => "max_batch must be positive",
            ConfigError::ZeroShardRows => "shard_rows must be positive",
            ConfigError::ZeroRowTileShards => "row_tile_shards must be positive",
            ConfigError::ZeroBulkMaxAge => "bulk_max_age must be positive",
            ConfigError::EmptySchemeAllowlistEntry => {
                "scheme_allowlist entries must be non-empty scheme names"
            }
            ConfigError::SessionActive => {
                "config can only change between sessions: a serving session is still active"
            }
            ConfigError::Backend(err) => return write!(f, "backend chain rejected: {err}"),
        })
    }
}

impl From<BackendError> for ConfigError {
    fn from(err: BackendError) -> Self {
        ConfigError::Backend(err)
    }
}

impl std::error::Error for ConfigError {}

/// Serving policy knobs. Build one with [`ServeConfig::builder`], which
/// validates every invariant and returns [`ConfigError`] instead of
/// panicking deep inside the server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded queue capacity, in requests (both
    /// [`Slo`](crate::Slo) classes share it).
    pub queue_capacity: usize,
    /// What a submission does when the queue is full.
    pub admission: Admission,
    /// Images per coalesced sweep (`None` = unbounded). Also installed as
    /// every resident model's `max_batch`, so even a single oversized
    /// request is executed in ≤ cap chunks.
    pub max_batch: Option<usize>,
    /// How long a scheduler lingers for more same-model arrivals while a
    /// **bulk** sweep is unfilled (measured from when the sweep starts
    /// forming). Latency sweeps never linger, and a latency arrival
    /// aborts an in-progress bulk linger.
    pub max_wait: Duration,
    /// Lower bound of the worker pool: the session starts with this many
    /// workers and the autoscaler never shrinks below it.
    pub min_workers: usize,
    /// Upper bound of the worker pool. Equal to `min_workers` (the
    /// [`workers`](ServeConfigBuilder::workers) shorthand) for a fixed
    /// pool; larger to let the autoscaler grow it against sustained
    /// queue depth.
    pub max_workers: usize,
    /// How long the queue must stay deeper than the live worker count
    /// before the autoscaler spawns another worker (sustained-depth
    /// filter: a single burst that drains immediately does not grow the
    /// pool).
    pub scale_up_after: Duration,
    /// How long a worker must sit idle (no work arriving) before it
    /// retires, down to `min_workers`.
    pub scale_down_idle: Duration,
    /// Per-tenant weights and quotas (see [`TenantSpec`]). Requests from
    /// tenants not listed here — including untagged requests — get
    /// weight 1 and no quotas.
    pub tenants: Vec<TenantSpec>,
    /// **Batch-segment sharding**: a sweep with more rows than this is
    /// split into segments published to the shard pool, where every
    /// worker — the coordinator included — steals and executes them
    /// concurrently before the bit-exact rejoin. Segments carry at most
    /// `min(shard_rows, max_batch)` rows, so the sweep cap stays in
    /// force on the sharded path too. Shards inherit their request's
    /// [`Slo`](crate::Slo) class for scheduling. `None` disables sharding
    /// (each sweep runs on one worker).
    pub shard_rows: Option<usize>,
    /// **Row-tile sharding**: splits every frozen convolution's
    /// grouped-conv front-end into this many independent row-tile shards
    /// (clamped per layer; see
    /// [`cq_core::PreparedCimModel::set_row_tile_shards`]). `None`
    /// disables it. Bit-identical either way. Shard tasks and the conv
    /// kernels both run on the shared `CQ_THREADS`-capped
    /// `cq_tensor::exec` pool, so compute parallelism stays at
    /// `CQ_THREADS` regardless of `workers × shards` — no multiplicative
    /// budgeting needed.
    pub row_tile_shards: Option<usize>,
    /// How latency work is ordered against bulk work (strict priority, or
    /// strict-with-aging for a bulk starvation bound).
    pub policy: SchedulerPolicy,
    /// Execution-backend fallback chain installed on every resident model
    /// (see [`cq_core::PreparedCimModel::set_backends`]): each frozen
    /// convolution resolves the first chain entry whose capability probe
    /// accepts its profile. With the default [`BackendSet::standard`]
    /// (`CQ_BACKEND`-overridable auto chain) a layer runs the repacked
    /// `i8×i8→i32` panel kernels when its slices are integer-exact and
    /// the blocked f32 kernels otherwise. Outputs are bit-identical
    /// across backends — the knob exists for A/B benchmarking and
    /// forcing; an unsatisfiable chain (e.g. bare `int` under variation)
    /// is a [`ConfigError::Backend`] at install time.
    pub backends: BackendSet,
    /// Quantization-scheme admission policy for **live** registration
    /// ([`ServeSession::register`](crate::ServeSession::register)): when
    /// non-empty, a model whose sniffed
    /// [`QuantScheme`](cq_core::QuantScheme) name
    /// ([`cq_core::PreparedCimModel::scheme`]) is not listed is refused
    /// with the recoverable
    /// [`SwapError::SchemeNotAllowed`](crate::SwapError) — the model is
    /// handed back untouched. Empty (the default) admits every scheme.
    /// Pre-session
    /// [`ModelRegistry::register`](crate::ModelRegistry::register) is not
    /// gated (the registry is built before its config in many flows); the
    /// allowlist governs hot-swaps only.
    pub scheme_allowlist: Vec<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            admission: Admission::Block,
            max_batch: Some(8),
            max_wait: Duration::from_micros(200),
            min_workers: 2,
            max_workers: 2,
            scale_up_after: Duration::from_millis(2),
            scale_down_idle: Duration::from_millis(50),
            tenants: Vec::new(),
            shard_rows: None,
            row_tile_shards: None,
            policy: SchedulerPolicy::Strict,
            backends: BackendSet::standard(),
            scheme_allowlist: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// A validating builder seeded with [`ServeConfig::default`].
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// The legacy [`PsumKernel`] view of the configured backend chain
    /// (see [`BackendSet::as_psum_kernel`]).
    pub fn psum_kernel(&self) -> PsumKernel {
        self.backends.as_psum_kernel()
    }

    /// Checks every invariant the server relies on.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.min_workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.max_workers < self.min_workers {
            return Err(ConfigError::WorkerBounds {
                min: self.min_workers,
                max: self.max_workers,
            });
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name == "default" || self.tenants[..i].iter().any(|o| o.name == t.name) {
                return Err(ConfigError::DuplicateTenant(t.name.clone()));
            }
            if !t.weight.is_finite() || t.weight <= 0.0 {
                return Err(ConfigError::TenantWeight {
                    name: t.name.clone(),
                    weight: t.weight,
                });
            }
            if t.max_queued == Some(0) || t.max_in_flight == Some(0) {
                return Err(ConfigError::ZeroTenantQuota(t.name.clone()));
            }
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.max_batch == Some(0) {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if self.shard_rows == Some(0) {
            return Err(ConfigError::ZeroShardRows);
        }
        if self.row_tile_shards == Some(0) {
            return Err(ConfigError::ZeroRowTileShards);
        }
        if self.policy.bulk_max_age() == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroBulkMaxAge);
        }
        if self.scheme_allowlist.iter().any(|s| s.is_empty()) {
            return Err(ConfigError::EmptySchemeAllowlistEntry);
        }
        Ok(())
    }
}

/// Builder for [`ServeConfig`]; every setter mirrors the field of the
/// same name, and [`build`](ServeConfigBuilder::build) validates the
/// result.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Bounded queue capacity, in requests.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity;
        self
    }

    /// What a submission does when the queue is full.
    pub fn admission(mut self, admission: Admission) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Images per coalesced sweep (`None` = unbounded).
    pub fn max_batch(mut self, max_batch: Option<usize>) -> Self {
        self.cfg.max_batch = max_batch;
        self
    }

    /// Bulk-sweep linger budget.
    pub fn max_wait(mut self, max_wait: Duration) -> Self {
        self.cfg.max_wait = max_wait;
        self
    }

    /// A **fixed** worker pool: sets `min_workers = max_workers =
    /// workers` (no autoscaling — the pre-autoscaler behavior).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.min_workers = workers;
        self.cfg.max_workers = workers;
        self
    }

    /// An **autoscaling** worker pool: starts at `min` workers, grows up
    /// to `max` against sustained queue depth, and shrinks back on idle.
    pub fn autoscale(mut self, min: usize, max: usize) -> Self {
        self.cfg.min_workers = min;
        self.cfg.max_workers = max;
        self
    }

    /// Sustained-depth window before the autoscaler grows the pool.
    pub fn scale_up_after(mut self, window: Duration) -> Self {
        self.cfg.scale_up_after = window;
        self
    }

    /// Idle window before a worker above `min_workers` retires.
    pub fn scale_down_idle(mut self, window: Duration) -> Self {
        self.cfg.scale_down_idle = window;
        self
    }

    /// Adds one tenant's weight and quotas (validated by
    /// [`build`](ServeConfigBuilder::build)).
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.cfg.tenants.push(spec);
        self
    }

    /// Batch-segment sharding bound (`None` disables).
    pub fn shard_rows(mut self, shard_rows: Option<usize>) -> Self {
        self.cfg.shard_rows = shard_rows;
        self
    }

    /// Row-tile shards per frozen convolution (`None` disables).
    pub fn row_tile_shards(mut self, shards: Option<usize>) -> Self {
        self.cfg.row_tile_shards = shards;
        self
    }

    /// Execution-backend fallback chain for every resident model.
    pub fn backends(mut self, backends: BackendSet) -> Self {
        self.cfg.backends = backends;
        self
    }

    /// Legacy kernel-family shorthand: installs the [`BackendSet`] the
    /// given [`PsumKernel`] maps to (`Auto` → auto chain, `F32` → f32
    /// only, `Int` → int only).
    pub fn psum_kernel(self, kernel: PsumKernel) -> Self {
        self.backends(kernel.into())
    }

    /// Quantization-scheme allowlist for live registration (empty admits
    /// every scheme); entries are validated non-empty by
    /// [`build`](ServeConfigBuilder::build).
    pub fn scheme_allowlist<I, S>(mut self, schemes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.cfg.scheme_allowlist = schemes.into_iter().map(Into::into).collect();
        self
    }

    /// Scheduling policy (strict priority or strict-with-aging).
    pub fn policy(mut self, policy: SchedulerPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Shorthand for `policy(SchedulerPolicy::Aging { bulk_max_age })`.
    pub fn bulk_max_age(self, bulk_max_age: Duration) -> Self {
        self.policy(SchedulerPolicy::Aging { bulk_max_age })
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ConfigError`].
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let cfg = ServeConfig::builder().build().unwrap();
        assert_eq!(cfg.queue_capacity, 64);
        assert_eq!(cfg.policy, SchedulerPolicy::Strict);
        // The default chain follows the process default (CQ_BACKEND), so
        // the assertion is env-robust rather than pinned to Auto.
        assert_eq!(cfg.backends, BackendSet::standard());
    }

    #[test]
    fn psum_kernel_setter_installs_the_mapped_chain() {
        let cfg = ServeConfig::builder()
            .psum_kernel(PsumKernel::F32)
            .build()
            .unwrap();
        assert_eq!(cfg.backends, BackendSet::f32());
        assert_eq!(cfg.psum_kernel(), PsumKernel::F32);
    }

    #[test]
    fn backends_setter_installs_the_chain() {
        let cfg = ServeConfig::builder()
            .backends(BackendSet::scalar())
            .build()
            .unwrap();
        assert_eq!(cfg.backends, BackendSet::scalar());
        assert_eq!(
            cfg.psum_kernel(),
            PsumKernel::F32,
            "non-integer chains report the F32 compat view"
        );
    }

    #[test]
    fn builder_rejects_every_zero_invariant() {
        let cases: Vec<(ServeConfigBuilder, ConfigError)> = vec![
            (ServeConfig::builder().workers(0), ConfigError::ZeroWorkers),
            (
                ServeConfig::builder().queue_capacity(0),
                ConfigError::ZeroQueueCapacity,
            ),
            (
                ServeConfig::builder().max_batch(Some(0)),
                ConfigError::ZeroMaxBatch,
            ),
            (
                ServeConfig::builder().shard_rows(Some(0)),
                ConfigError::ZeroShardRows,
            ),
            (
                ServeConfig::builder().row_tile_shards(Some(0)),
                ConfigError::ZeroRowTileShards,
            ),
            (
                ServeConfig::builder().bulk_max_age(Duration::ZERO),
                ConfigError::ZeroBulkMaxAge,
            ),
            (
                ServeConfig::builder().scheme_allowlist(["bwma", ""]),
                ConfigError::EmptySchemeAllowlistEntry,
            ),
        ];
        for (builder, want) in cases {
            assert_eq!(builder.build().unwrap_err(), want);
        }
    }

    #[test]
    fn workers_shorthand_fixes_the_pool_and_autoscale_sets_bounds() {
        let fixed = ServeConfig::builder().workers(3).build().unwrap();
        assert_eq!((fixed.min_workers, fixed.max_workers), (3, 3));
        let scaled = ServeConfig::builder().autoscale(1, 6).build().unwrap();
        assert_eq!((scaled.min_workers, scaled.max_workers), (1, 6));
        assert_eq!(
            ServeConfig::builder().autoscale(4, 2).build().unwrap_err(),
            ConfigError::WorkerBounds { min: 4, max: 2 }
        );
        assert_eq!(
            ServeConfig::builder().autoscale(0, 2).build().unwrap_err(),
            ConfigError::ZeroWorkers
        );
    }

    #[test]
    fn tenant_specs_are_validated() {
        let ok = ServeConfig::builder()
            .tenant(TenantSpec::new("a").weight(2.0).max_queued(8))
            .tenant(TenantSpec::new("b").max_in_flight(4))
            .build()
            .unwrap();
        assert_eq!(ok.tenants.len(), 2);
        assert_eq!(ok.tenants[0].max_queued, Some(8));
        let dup = ServeConfig::builder()
            .tenant(TenantSpec::new("a"))
            .tenant(TenantSpec::new("a"))
            .build()
            .unwrap_err();
        assert_eq!(dup, ConfigError::DuplicateTenant("a".into()));
        assert_eq!(
            ServeConfig::builder()
                .tenant(TenantSpec::new("default"))
                .build()
                .unwrap_err(),
            ConfigError::DuplicateTenant("default".into())
        );
        assert!(matches!(
            ServeConfig::builder()
                .tenant(TenantSpec::new("a").weight(-1.0))
                .build()
                .unwrap_err(),
            ConfigError::TenantWeight { .. }
        ));
        assert_eq!(
            ServeConfig::builder()
                .tenant(TenantSpec::new("a").max_queued(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroTenantQuota("a".into())
        );
    }

    #[test]
    fn scheme_allowlist_defaults_open_and_accepts_names() {
        let open = ServeConfig::builder().build().unwrap();
        assert!(
            open.scheme_allowlist.is_empty(),
            "default admits everything"
        );
        let gated = ServeConfig::builder()
            .scheme_allowlist(["paper-lsq-column", "bwma"])
            .build()
            .unwrap();
        assert_eq!(gated.scheme_allowlist, ["paper-lsq-column", "bwma"]);
    }

    #[test]
    fn aging_shorthand_sets_the_policy() {
        let cfg = ServeConfig::builder()
            .bulk_max_age(Duration::from_millis(50))
            .build()
            .unwrap();
        assert_eq!(
            cfg.policy.bulk_max_age(),
            Some(Duration::from_millis(50)),
            "bulk_max_age shorthand must install the aging policy"
        );
    }
}
