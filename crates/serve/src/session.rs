//! The owned, non-blocking serving session: worker threads, the sweep /
//! shard execution paths, and the client-side submission surface.
//!
//! A [`ServeSession`] is created by [`CimServer::start`](crate::CimServer::start)
//! (owned flow — `shutdown` hands the resident models back) or internally
//! by [`CimServer::serve`](crate::CimServer::serve) (scoped compatibility
//! flow). Its worker threads are **owned** `std::thread::spawn` threads
//! sharing the session state through `Arc` — no scope borrow, so the
//! session can be moved, stored, and shut down from anywhere, and clients
//! never block inside a closure unless they choose to.

use crate::config::ServeConfig;
use crate::queue::BatchScheduler;
use crate::queue::{
    QueuedRequest, RequestQueue, ResponseSlot, ServeStats, ShardJoin, ShardTask, Slo, SubmitError,
    Ticket, Work,
};
use crate::registry::{ModelId, ModelRegistry};
use crate::request::{Request, Target};
use cq_cim::ShardPlan;
use cq_core::{BackendKind, PreparedCimModel};
use cq_tensor::Tensor;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The server state a session shares with its workers (and, in the
/// compatibility flow, with the originating [`CimServer`](crate::CimServer)).
pub(crate) struct ServerCore {
    pub(crate) registry: ModelRegistry,
    /// Primary backend per resident model (registry order), snapshotted
    /// when the backend chain is installed — workers attribute sweeps and
    /// shard tasks to it without touching the model locks.
    pub(crate) model_backends: Vec<BackendKind>,
    /// Active frozen-layer counts per [`BackendKind::index`], summed over
    /// the resident model set at the same snapshot.
    pub(crate) backend_layers: [usize; 3],
}

/// Everything one session's workers share.
struct SessionShared {
    core: Arc<ServerCore>,
    queue: RequestQueue,
    cfg: ServeConfig,
}

/// Live session internals; `Option`-wrapped in [`ServeSession`] so both
/// `shutdown(self)` and `Drop` can take them exactly once.
struct SessionInner {
    shared: Arc<SessionShared>,
    workers: Vec<JoinHandle<()>>,
}

/// An owned, running serving session: worker threads are spawned at
/// creation and drain the queue until [`shutdown`](ServeSession::shutdown).
///
/// * [`submit`](ServeSession::submit) is the **single** submission entry
///   point, taking a [`Request`] built fluently
///   (`Request::to("m").batch(x).slo(..).deadline(..).weight(..)`).
/// * Tickets are pollable ([`Ticket::try_wait`], [`Ticket::wait_timeout`])
///   and multiplexable ([`CompletionSet`](crate::CompletionSet)), so one
///   client thread can keep hundreds of requests in flight — nothing
///   about the session ever forces a block.
/// * [`shutdown`](ServeSession::shutdown) closes the queue, drains every
///   admitted request (each outstanding ticket resolves — fulfilment or a
///   propagated worker panic, never a hang), joins the workers, and
///   returns the final [`ServeStats`] together with the resident models.
///
/// Dropping a session without `shutdown` (e.g. while a client panic
/// unwinds) closes the queue and joins the workers too, so worker threads
/// never leak; worker panics are swallowed in that path (the client's own
/// panic is already propagating).
pub struct ServeSession {
    inner: Option<SessionInner>,
}

impl ServeSession {
    /// Spawns the session's worker threads over `core` under `cfg`
    /// (validated by the caller).
    pub(crate) fn spawn(core: Arc<ServerCore>, cfg: ServeConfig) -> Self {
        let workers = cfg.workers;
        let shared = Arc::new(SessionShared {
            queue: RequestQueue::new(cfg.queue_capacity),
            core,
            cfg,
        });
        shared.queue.set_backend_layers(shared.core.backend_layers);
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cq-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serving worker")
            })
            .collect();
        Self {
            inner: Some(SessionInner { shared, workers }),
        }
    }

    fn inner(&self) -> &SessionInner {
        self.inner.as_ref().expect("session already shut down")
    }

    /// Submits one request, returning its pollable [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] for an unregistered target;
    /// [`SubmitError::MissingInput`] for a request built without
    /// [`Request::batch`]; [`SubmitError::QueueFull`] when full under
    /// [`Admission::Reject`](crate::Admission) (the input is handed
    /// back); [`SubmitError::Closed`] once shutdown has begun.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4.
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        let shared = &self.inner().shared;
        let model = match request.target {
            Target::Id(id) => id,
            Target::Name(name) => match shared.core.registry.id(&name) {
                Some(id) => id,
                None => return Err(SubmitError::UnknownModel(name)),
            },
        };
        let input = request.input.ok_or(SubmitError::MissingInput)?;
        assert_eq!(input.rank(), 4, "request must be [B,C,H,W]");
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), request.slo, request.deadline);
        shared.queue.submit(
            QueuedRequest {
                model: model.0,
                input,
                slot,
                slo: request.slo,
                deadline: ticket.deadline(),
                submitted_at: ticket.submitted_at(),
                weight: request.weight,
            },
            shared.cfg.admission,
        )?;
        Ok(ticket)
    }

    /// Resolves a model name to its registry handle (for
    /// [`Request::to_id`] hot paths).
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.inner().shared.core.registry.id(name)
    }

    /// The resident model set.
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner().shared.core.registry
    }

    /// The policy this session was started under.
    pub fn config(&self) -> &ServeConfig {
        &self.inner().shared.cfg
    }

    /// Live counter snapshot (the final numbers come from
    /// [`shutdown`](ServeSession::shutdown)).
    pub fn stats(&self) -> ServeStats {
        self.inner().shared.queue.stats()
    }

    /// Shuts the session down: closes the queue (further submissions fail
    /// with [`SubmitError::Closed`]), lets the workers drain every
    /// already-admitted request, joins them, and returns the final stats
    /// together with the resident models — ready to re-register for the
    /// next session ([`ModelRegistry::from_models`]).
    ///
    /// Every ticket obtained from this session is resolved by the time
    /// `shutdown` returns: fulfilled, or — when its worker panicked —
    /// abandoned so that resolving it propagates the panic.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic (after all workers joined), so a
    /// failed sweep cannot be silently dropped.
    pub fn shutdown(mut self) -> (ServeStats, Vec<(String, PreparedCimModel)>) {
        let inner = self.inner.take().expect("session already shut down");
        let stats = close_and_join(&inner.shared, inner.workers);
        let shared = Arc::try_unwrap(inner.shared)
            .ok()
            .expect("workers joined but session state still shared");
        let core = Arc::try_unwrap(shared.core)
            .ok()
            .expect("session does not own the server: shut down through CimServer::serve instead");
        (stats, core.registry.into_models())
    }

    /// The compatibility drain used by [`CimServer::serve`](crate::CimServer::serve):
    /// close, drain, join, return stats — without dissolving the shared
    /// core (the server keeps its registry).
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic, matching the PR 3/4 `serve`
    /// contract.
    pub(crate) fn finish(mut self) -> ServeStats {
        let inner = self.inner.take().expect("session already shut down");
        close_and_join(&inner.shared, inner.workers)
    }
}

impl Drop for ServeSession {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            // Unwind path (shutdown/finish take `inner` on the normal
            // paths): close so workers exit, join so threads never leak,
            // swallow worker panics — the client's panic is already
            // propagating and a double panic would abort.
            inner.shared.queue.close();
            for worker in inner.workers {
                let _ = worker.join();
            }
        }
    }
}

/// Closes the queue, joins every worker, and snapshots the final stats;
/// re-raises the first worker panic after all workers joined.
fn close_and_join(shared: &SessionShared, workers: Vec<JoinHandle<()>>) -> ServeStats {
    shared.queue.close();
    let mut first_panic = None;
    for worker in workers {
        if let Err(panic) = worker.join() {
            first_panic.get_or_insert(panic);
        }
    }
    let stats = shared.queue.stats();
    if let Some(panic) = first_panic {
        std::panic::resume_unwind(panic);
    }
    stats
}

/// One worker: steal shards, form sweeps, fulfil tickets.
fn worker_loop(shared: &SessionShared) {
    let sched = BatchScheduler::new(
        &shared.queue,
        shared.cfg.max_batch,
        shared.cfg.max_wait,
        shared.cfg.policy,
    );
    while let Some(work) = sched.next_work() {
        match work {
            Work::Shard(task) => run_shard(shared, task),
            Work::Sweep(batch) => serve_sweep(shared, batch),
        }
    }
}

/// Executes one stolen batch segment through the shared-state model path
/// (read lock — concurrent with other segments of the same model). If
/// execution panics, the join is failed on unwind so the coordinator
/// propagates the panic instead of hanging.
fn run_shard(shared: &SessionShared, task: ShardTask) {
    struct FailOnDrop {
        join: Arc<ShardJoin>,
        armed: bool,
    }
    impl Drop for FailOnDrop {
        fn drop(&mut self) {
            if self.armed {
                self.join.fail();
            }
        }
    }
    let mut guard = FailOnDrop {
        join: task.join.clone(),
        armed: true,
    };
    let output = shared
        .core
        .registry
        .infer_shared(ModelId(task.model), &task.segment);
    guard.armed = false;
    shared
        .queue
        .note_backend_shard(shared.core.model_backends[task.model]);
    task.join.complete(task.index, output);
}

/// Serves one formed sweep: runs it (whole, or sharded across the worker
/// pool), splits the output back per request, and fulfils the tickets
/// with per-class deadline accounting.
fn serve_sweep(shared: &SessionShared, batch: Vec<QueuedRequest>) {
    // If anything below panics, abandon the unfulfilled tickets on unwind
    // so their waiters fail loudly instead of hanging.
    struct AbandonOnDrop(Vec<Arc<ResponseSlot>>);
    impl Drop for AbandonOnDrop {
        fn drop(&mut self) {
            for slot in &self.0 {
                slot.abandon();
            }
        }
    }
    let model = ModelId(batch[0].model);
    let mut inputs = Vec::with_capacity(batch.len());
    let mut metas = Vec::with_capacity(batch.len());
    let mut slots = Vec::with_capacity(batch.len());
    for q in batch {
        inputs.push(q.input);
        metas.push((q.slo, q.deadline));
        slots.push(q.slot);
    }
    let guard = AbandonOnDrop(slots);
    let rows: usize = inputs.iter().map(|t| t.dim(0)).sum();
    let slo = metas[0].0; // sweeps are single-class
    let shardable = shared
        .cfg
        .shard_rows
        .is_some_and(|cap| rows > cap && inputs.iter().all(|t| t.dim(0) > 0));
    let outputs = if shardable {
        infer_sharded(shared, model, slo, &inputs, rows)
    } else {
        shared.core.registry.infer_batch(model, &inputs)
    };
    shared
        .queue
        .note_backend_sweep(shared.core.model_backends[model.0], rows as u64);
    debug_assert_eq!(outputs.len(), guard.0.len());
    for ((slot, output), (slo, deadline)) in guard.0.iter().zip(outputs).zip(&metas) {
        let at = slot.fulfill(output);
        shared
            .queue
            .note_served(*slo, deadline.is_some(), deadline.is_some_and(|d| at > d));
    }
    // All fulfilled; the guard's abandon() calls are now no-ops.
}

/// Executes one oversized sweep cooperatively: the coalesced rows are
/// split into segments of at most `min(shard_rows, max_batch)` rows — the
/// sweep cap stays in force, since the shared segment path does no
/// internal chunking — published to the shard pool, and executed by
/// whichever workers steal them; this coordinator drains the pool too
/// while it waits. Segment outputs are rejoined by exact concatenation
/// and sliced back per request, bit-identical to the unsharded sweep
/// (every layer processes batch rows independently; `sharded_equivalence`
/// and the serving tests pin this).
fn infer_sharded(
    shared: &SessionShared,
    model: ModelId,
    slo: Slo,
    inputs: &[Tensor],
    rows: usize,
) -> Vec<Tensor> {
    let owned;
    let coalesced: &Tensor = if inputs.len() == 1 {
        &inputs[0]
    } else {
        owned = Tensor::concat_outer(&inputs.iter().collect::<Vec<_>>());
        &owned
    };
    let seg_rows = shared
        .cfg
        .shard_rows
        .unwrap()
        .min(shared.cfg.max_batch.unwrap_or(usize::MAX));
    let plan = ShardPlan::split_max(rows, seg_rows);
    let join = Arc::new(ShardJoin::new(plan.num_shards()));
    shared
        .queue
        .push_shards(plan.iter().enumerate().map(|(index, seg)| ShardTask {
            model: model.0,
            segment: coalesced.slice_outer(seg.start, seg.end),
            index,
            slo,
            join: join.clone(),
        }));
    // Cooperative wait: keep stealing shard tasks (ours or another
    // coordinator's) while our join is incomplete; block only when the
    // pool is empty — every queued task is then in flight on some worker,
    // so the join (or a failure) is guaranteed to resolve.
    let parts = loop {
        if join.is_done() {
            break join.wait();
        }
        match shared.queue.try_pop_shard() {
            Some(task) => run_shard(shared, task),
            None => break join.wait(),
        }
    };
    let merged = Tensor::concat_outer(&parts.iter().collect::<Vec<_>>());
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut start = 0;
    for input in inputs {
        let b = input.dim(0);
        outputs.push(merged.slice_outer(start, start + b));
        start += b;
    }
    outputs
}
