//! The owned, non-blocking serving session: the autoscaling worker pool,
//! the sweep / shard execution paths, live model hot-swap, and the
//! client-side submission surface.
//!
//! A [`ServeSession`] is created by [`CimServer::start`](crate::CimServer::start)
//! (owned flow — `shutdown` hands the resident models back) or internally
//! by [`CimServer::serve`](crate::CimServer::serve) (scoped compatibility
//! flow). Its worker threads are **owned** `std::thread::spawn` threads
//! sharing the session state through `Arc` — no scope borrow, so the
//! session can be moved, stored, and shut down from anywhere, and clients
//! never block inside a closure unless they choose to.
//!
//! **Autoscaling.** The pool starts at `min_workers` and grows toward
//! `max_workers` when the queue stays deeper than the live worker count
//! for `scale_up_after` (measured across submissions, so a one-off burst
//! that drains immediately never grows the pool). Workers above
//! `min_workers` retire after sitting idle for `scale_down_idle`. Resizes
//! only change who *pops* the shared queue — admitted work is never
//! dropped or reordered by a resize.
//!
//! **Hot-swap.** [`register`](ServeSession::register) and
//! [`evict`](ServeSession::evict) mutate the resident model set while the
//! session serves. Eviction drains: in-flight requests against the old
//! model complete bit-exactly, new submissions fail with a recoverable
//! [`SubmitError::UnknownModel`], and the returned
//! [`EvictTicket`](crate::EvictTicket) resolves with the reclaimed
//! [`PreparedCimModel`] once the last in-flight request lands.

use crate::config::ServeConfig;
use crate::metrics::{ModelStats, WorkerStats};
use crate::queue::BatchScheduler;
use crate::queue::{
    QueuedRequest, RequestQueue, ResponseSlot, ServeStats, ShardJoin, ShardTask, Slo, SubmitError,
    Ticket, Work, WorkPoll,
};
use crate::registry::{EvictTicket, ModelId, ModelRegistry, SlotMeta, SwapError};
use crate::request::{Request, Target};
use cq_cim::ShardPlan;
use cq_core::{BackendKind, PreparedCimModel};
use cq_tensor::Tensor;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The server state a session shares with its workers (and, in the
/// compatibility flow, with the originating [`CimServer`](crate::CimServer)).
pub(crate) struct ServerCore {
    pub(crate) registry: ModelRegistry,
}

/// The worker pool's mutable state (behind one mutex — touched on
/// spawn/retire/snapshot, never on the per-request hot path beyond the
/// depth probe in `maybe_scale_up`).
struct PoolState {
    /// Workers currently running (spawned and not retired/exited).
    live: usize,
    /// Most workers ever live at once.
    peak: usize,
    /// Threads spawned over the session, the initial set included.
    spawned: u64,
    /// Grow + shrink events after the initial spawn.
    resizes: u64,
    /// Monotonic worker-name counter.
    next_index: usize,
    /// Since when the queue has been continuously deeper than the live
    /// worker count (the scale-up sustain filter).
    high_since: Option<Instant>,
    /// Join handles of every spawned worker — retired workers' handles
    /// stay here (joining a finished thread is instant) so shutdown joins
    /// every thread ever spawned.
    handles: Vec<JoinHandle<()>>,
}

/// Everything one session's workers share.
struct SessionShared {
    core: Arc<ServerCore>,
    queue: RequestQueue,
    cfg: ServeConfig,
    pool: Mutex<PoolState>,
}

/// Live session internals; `Option`-wrapped in [`ServeSession`] so both
/// `shutdown(self)` and `Drop` can take them exactly once.
struct SessionInner {
    shared: Arc<SessionShared>,
}

/// An owned, running serving session: worker threads are spawned at
/// creation and drain the queue until [`shutdown`](ServeSession::shutdown).
///
/// * [`submit`](ServeSession::submit) is the **single** submission entry
///   point, taking a [`Request`] built fluently
///   (`Request::to("m").batch(x).slo(..).deadline(..).weight(..).tenant(..)`).
/// * Tickets are pollable ([`Ticket::try_wait`], [`Ticket::wait_timeout`])
///   and multiplexable ([`CompletionSet`](crate::CompletionSet)), so one
///   client thread can keep hundreds of requests in flight — nothing
///   about the session ever forces a block.
/// * [`register`](ServeSession::register) / [`evict`](ServeSession::evict)
///   hot-swap the resident model set without stopping the session.
/// * The worker pool autoscales between `min_workers..=max_workers`
///   against observed queue depth (see the module docs).
/// * [`shutdown`](ServeSession::shutdown) closes the queue, drains every
///   admitted request (each outstanding ticket resolves — fulfilment or a
///   propagated worker panic, never a hang), joins the workers, and
///   returns the final [`ServeStats`] together with the resident models.
///
/// Dropping a session without `shutdown` (e.g. while a client panic
/// unwinds) closes the queue and joins the workers too, so worker threads
/// never leak; worker panics are swallowed in that path (the client's own
/// panic is already propagating).
pub struct ServeSession {
    inner: Option<SessionInner>,
}

impl ServeSession {
    /// Spawns the session's initial `min_workers` worker threads over
    /// `core` under `cfg` (validated by the caller).
    pub(crate) fn spawn(core: Arc<ServerCore>, cfg: ServeConfig) -> Self {
        let shared = Arc::new(SessionShared {
            queue: RequestQueue::with_tenants(cfg.queue_capacity, &cfg.tenants),
            core,
            pool: Mutex::new(PoolState {
                live: 0,
                peak: 0,
                spawned: 0,
                resizes: 0,
                next_index: 0,
                high_since: None,
                handles: Vec::new(),
            }),
            cfg,
        });
        shared
            .queue
            .set_backend_layers(shared.core.registry.backend_layer_counts());
        {
            let mut pool = shared.pool.lock().unwrap();
            for _ in 0..shared.cfg.min_workers {
                spawn_worker(&shared, &mut pool);
            }
        }
        Self {
            inner: Some(SessionInner { shared }),
        }
    }

    fn inner(&self) -> &SessionInner {
        self.inner.as_ref().expect("session already shut down")
    }

    /// Submits one request, returning its pollable [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] for an unregistered (or evicted)
    /// target; [`SubmitError::MissingInput`] for a request built without
    /// [`Request::batch`]; [`SubmitError::QuotaExceeded`] when the
    /// request's tenant is at a quota (the input is handed back);
    /// [`SubmitError::QueueFull`] when full under
    /// [`Admission::Reject`](crate::Admission) (the input is handed
    /// back); [`SubmitError::Closed`] once shutdown has begun.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4.
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        let shared = &self.inner().shared;
        let registry = &shared.core.registry;
        let input = request.input.ok_or(SubmitError::MissingInput)?;
        assert_eq!(input.rank(), 4, "request must be [B,C,H,W]");
        let tenant = match &request.tenant {
            None => 0,
            Some(t) => shared.queue.resolve_tenant(t.name()),
        };
        // Admission against the model slot is atomic with liveness: a
        // successful admit means the slot's eviction (if any) will wait
        // for this request to drain.
        let model = match request.target {
            Target::Id(id) => {
                registry.admit(id)?;
                id
            }
            Target::Name(name) => registry.admit_name(&name)?,
        };
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), request.slo, request.deadline);
        let queued = shared.queue.submit(
            QueuedRequest {
                model: model.0,
                input,
                slot,
                slo: request.slo,
                deadline: ticket.deadline(),
                submitted_at: ticket.submitted_at(),
                weight: request.weight,
                tenant,
            },
            shared.cfg.admission,
        );
        if let Err(err) = queued {
            registry.release(model);
            return Err(err);
        }
        maybe_scale_up(shared);
        Ok(ticket)
    }

    /// Registers `model` under `name` on the **running** session: the
    /// session's freeze-time knobs (`max_batch`, `row_tile_shards`, the
    /// backend chain) are installed on it, and new submissions can route
    /// to it the moment this returns. Names are reusable after eviction —
    /// lookup always resolves to the newest live model.
    ///
    /// # Errors
    ///
    /// [`SwapError::DuplicateName`] when a live model already holds
    /// `name` (same or different quantization scheme — never a silent
    /// overwrite), [`SwapError::SchemeNotAllowed`] when the session's
    /// [`ServeConfig::scheme_allowlist`] refuses the model's scheme, and
    /// [`SwapError::Backend`] when the session's backend chain cannot
    /// execute the model — all hand the model back.
    pub fn register(
        &self,
        name: impl Into<String>,
        mut model: PreparedCimModel,
    ) -> Result<ModelId, SwapError> {
        let shared = &self.inner().shared;
        let scheme = model.scheme();
        if !shared.cfg.scheme_allowlist.is_empty() && !shared.cfg.scheme_allowlist.contains(&scheme)
        {
            return Err(SwapError::SchemeNotAllowed { scheme, model });
        }
        model.set_max_batch(shared.cfg.max_batch);
        model.set_row_tile_shards(shared.cfg.row_tile_shards);
        if let Err(error) = model.set_backends(shared.cfg.backends.clone()) {
            return Err(SwapError::Backend { error, model });
        }
        let meta = SlotMeta {
            kind: model.primary_backend().unwrap_or(BackendKind::SimdF32),
            layers: model.backend_layer_counts(),
        };
        let id = shared
            .core
            .registry
            .register_live(name, scheme, model, meta)?;
        shared.queue.note_hot_register();
        shared
            .queue
            .set_backend_layers(shared.core.registry.backend_layer_counts());
        Ok(id)
    }

    /// Evicts the newest live model named `name` from the running
    /// session. New submissions against the name fail immediately with a
    /// recoverable [`SubmitError::UnknownModel`]; requests already
    /// admitted drain to completion, and the returned
    /// [`EvictTicket`](crate::EvictTicket) resolves with the reclaimed
    /// [`PreparedCimModel`] once the last one lands (immediately, when
    /// the model is idle; at [`shutdown`](ServeSession::shutdown) at the
    /// latest).
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownModel`] when no live model holds `name`.
    pub fn evict(&self, name: &str) -> Result<EvictTicket, SwapError> {
        let shared = &self.inner().shared;
        let ticket = shared.core.registry.evict(name)?;
        shared.queue.note_evicted();
        shared
            .queue
            .set_backend_layers(shared.core.registry.backend_layer_counts());
        Ok(ticket)
    }

    /// Resolves a model name to its registry handle (for
    /// [`Request::to_id`] hot paths).
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.inner().shared.core.registry.id(name)
    }

    /// The resident model set.
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner().shared.core.registry
    }

    /// The policy this session was started under.
    pub fn config(&self) -> &ServeConfig {
        &self.inner().shared.cfg
    }

    /// Live worker threads right now (between `min_workers` and
    /// `max_workers`).
    pub fn live_workers(&self) -> usize {
        self.inner().shared.pool.lock().unwrap().live
    }

    /// Live counter snapshot — safe to call concurrently with serving and
    /// hot-swapping (the final numbers come from
    /// [`shutdown`](ServeSession::shutdown)).
    pub fn stats(&self) -> ServeStats {
        let shared = &self.inner().shared;
        let mut stats = shared.queue.stats();
        finalize_stats(shared, &mut stats);
        stats
    }

    /// Shuts the session down: closes the queue (further submissions fail
    /// with [`SubmitError::Closed`]), lets the workers drain every
    /// already-admitted request, joins them, delivers any still-pending
    /// [`EvictTicket`](crate::EvictTicket), and returns the final stats
    /// together with the **live** resident models — ready to re-register
    /// for the next session ([`ModelRegistry::from_models`]). Evicted
    /// models are not in the returned set; they belong to their evict
    /// tickets.
    ///
    /// Every ticket obtained from this session is resolved by the time
    /// `shutdown` returns: fulfilled, or — when its worker panicked —
    /// abandoned so that resolving it propagates the panic.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic (after all workers joined), so a
    /// failed sweep cannot be silently dropped.
    pub fn shutdown(mut self) -> (ServeStats, Vec<(String, PreparedCimModel)>) {
        let inner = self.inner.take().expect("session already shut down");
        let mut stats = close_and_join(&inner.shared);
        // Workers joined: nothing is in flight, so any eviction still
        // waiting on a drain (e.g. its worker panicked before releasing)
        // resolves now rather than hanging its ticket.
        inner.shared.core.registry.deliver_pending_evictions();
        finalize_stats(&inner.shared, &mut stats);
        let shared = Arc::try_unwrap(inner.shared)
            .ok()
            .expect("workers joined but session state still shared");
        let core = Arc::try_unwrap(shared.core)
            .ok()
            .expect("session does not own the server: shut down through CimServer::serve instead");
        (stats, core.registry.into_models())
    }

    /// The compatibility drain used by [`CimServer::serve`](crate::CimServer::serve):
    /// close, drain, join, return stats — without dissolving the shared
    /// core (the server keeps its registry).
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic, matching the PR 3/4 `serve`
    /// contract.
    pub(crate) fn finish(mut self) -> ServeStats {
        let inner = self.inner.take().expect("session already shut down");
        let mut stats = close_and_join(&inner.shared);
        inner.shared.core.registry.deliver_pending_evictions();
        finalize_stats(&inner.shared, &mut stats);
        stats
    }
}

impl Drop for ServeSession {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            // Unwind path (shutdown/finish take `inner` on the normal
            // paths): close so workers exit, join so threads never leak,
            // swallow worker panics — the client's panic is already
            // propagating and a double panic would abort.
            inner.shared.queue.close();
            loop {
                let handles: Vec<_> = {
                    let mut pool = inner.shared.pool.lock().unwrap();
                    pool.handles.drain(..).collect()
                };
                if handles.is_empty() {
                    break;
                }
                for worker in handles {
                    let _ = worker.join();
                }
            }
            inner.shared.core.registry.deliver_pending_evictions();
        }
    }
}

/// Spawns one worker thread and records it in the pool (caller holds the
/// pool lock).
fn spawn_worker(shared: &Arc<SessionShared>, pool: &mut PoolState) {
    let index = pool.next_index;
    pool.next_index += 1;
    pool.live += 1;
    pool.peak = pool.peak.max(pool.live);
    pool.spawned += 1;
    let worker_shared = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("cq-serve-{index}"))
        .spawn(move || worker_loop(&worker_shared))
        .expect("spawn serving worker");
    pool.handles.push(handle);
}

/// The submit-path scale-up probe: when the queue has stayed deeper than
/// the live worker count for `scale_up_after`, grow the pool by one
/// (up to `max_workers`).
fn maybe_scale_up(shared: &Arc<SessionShared>) {
    if shared.cfg.max_workers <= shared.cfg.min_workers {
        return;
    }
    let depth = shared.queue.depth();
    let mut pool = shared.pool.lock().unwrap();
    if pool.live >= shared.cfg.max_workers || depth <= pool.live {
        pool.high_since = None;
        return;
    }
    let now = Instant::now();
    let since = *pool.high_since.get_or_insert(now);
    if now.duration_since(since) >= shared.cfg.scale_up_after {
        pool.high_since = None;
        spawn_worker(shared, &mut pool);
        pool.resizes += 1;
    }
}

/// Retires the calling worker if the pool is above `min_workers`; returns
/// whether it retired.
fn try_retire(shared: &SessionShared) -> bool {
    let mut pool = shared.pool.lock().unwrap();
    if pool.live > shared.cfg.min_workers {
        pool.live -= 1;
        pool.resizes += 1;
        true
    } else {
        false
    }
}

/// Closes the queue, joins every worker ever spawned, and snapshots the
/// final stats; re-raises the first worker panic after all workers
/// joined. Joins in rounds: a scale-up racing the close can add a handle
/// after the first drain, and that worker exits promptly on the closed
/// queue.
fn close_and_join(shared: &SessionShared) -> ServeStats {
    shared.queue.close();
    let mut first_panic = None;
    loop {
        let handles: Vec<_> = {
            let mut pool = shared.pool.lock().unwrap();
            pool.handles.drain(..).collect()
        };
        if handles.is_empty() {
            break;
        }
        for worker in handles {
            if let Err(panic) = worker.join() {
                first_panic.get_or_insert(panic);
            }
        }
    }
    let stats = shared.queue.stats();
    if let Some(panic) = first_panic {
        std::panic::resume_unwind(panic);
    }
    stats
}

/// Overlays what only the session knows onto a queue counter snapshot:
/// model names / scheme attribution / eviction flags (registry) and the
/// worker-pool gauges.
fn finalize_stats(shared: &SessionShared, stats: &mut ServeStats) {
    let names = shared.core.registry.slot_names();
    while stats.models.len() < names.len() {
        stats.models.push(ModelStats::default());
    }
    for (m, (name, scheme, evicted)) in stats.models.iter_mut().zip(names) {
        m.name = name;
        m.scheme = scheme;
        m.evicted = evicted;
    }
    let pool = shared.pool.lock().unwrap();
    stats.workers = WorkerStats {
        min: shared.cfg.min_workers,
        max: shared.cfg.max_workers,
        live: pool.live,
        peak: pool.peak,
        spawned: pool.spawned,
        resizes: pool.resizes,
    };
}

/// One worker: steal shards, form sweeps, fulfil tickets — and, in an
/// autoscaling pool, retire after `scale_down_idle` without work.
fn worker_loop(shared: &SessionShared) {
    let sched = BatchScheduler::new(
        &shared.queue,
        shared.cfg.max_batch,
        shared.cfg.max_wait,
        shared.cfg.policy,
    );
    let idle_after =
        (shared.cfg.max_workers > shared.cfg.min_workers).then_some(shared.cfg.scale_down_idle);
    loop {
        match sched.poll_work(idle_after) {
            WorkPoll::Ready(Work::Shard(task)) => run_shard(shared, task),
            WorkPoll::Ready(Work::Sweep(batch)) => serve_sweep(shared, batch),
            WorkPoll::Idle => {
                if try_retire(shared) {
                    return;
                }
            }
            WorkPoll::Closed => {
                shared.pool.lock().unwrap().live -= 1;
                return;
            }
        }
    }
}

/// Executes one stolen batch segment through the shared-state model path
/// (read lock — concurrent with other segments of the same model). If
/// execution panics, the join is failed on unwind so the coordinator
/// propagates the panic instead of hanging.
fn run_shard(shared: &SessionShared, task: ShardTask) {
    struct FailOnDrop {
        join: Arc<ShardJoin>,
        armed: bool,
    }
    impl Drop for FailOnDrop {
        fn drop(&mut self) {
            if self.armed {
                self.join.fail();
            }
        }
    }
    let mut guard = FailOnDrop {
        join: task.join.clone(),
        armed: true,
    };
    let output = shared
        .core
        .registry
        .infer_shared(ModelId(task.model), &task.segment);
    guard.armed = false;
    let kind = shared.core.registry.slot_meta(ModelId(task.model)).kind;
    shared.queue.note_backend_shard(kind, task.model);
    task.join.complete(task.index, output);
}

/// Serves one formed sweep: runs it (whole, or sharded across the worker
/// pool), splits the output back per request, and fulfils the tickets
/// with per-class, per-tenant latency and deadline accounting, releasing
/// each request's model admission (the eviction drain count).
fn serve_sweep(shared: &SessionShared, batch: Vec<QueuedRequest>) {
    // If anything below panics, abandon the unfulfilled tickets on unwind
    // so their waiters fail loudly instead of hanging.
    struct AbandonOnDrop(Vec<Arc<ResponseSlot>>);
    impl Drop for AbandonOnDrop {
        fn drop(&mut self) {
            for slot in &self.0 {
                slot.abandon();
            }
        }
    }
    let model = ModelId(batch[0].model);
    let mut inputs = Vec::with_capacity(batch.len());
    let mut metas = Vec::with_capacity(batch.len());
    let mut slots = Vec::with_capacity(batch.len());
    for q in batch {
        inputs.push(q.input);
        metas.push((q.slo, q.deadline, q.submitted_at, q.tenant));
        slots.push(q.slot);
    }
    let guard = AbandonOnDrop(slots);
    let rows: usize = inputs.iter().map(|t| t.dim(0)).sum();
    let slo = metas[0].0; // sweeps are single-class
    let shardable = shared
        .cfg
        .shard_rows
        .is_some_and(|cap| rows > cap && inputs.iter().all(|t| t.dim(0) > 0));
    let outputs = if shardable {
        infer_sharded(shared, model, slo, &inputs, rows)
    } else {
        shared.core.registry.infer_batch(model, &inputs)
    };
    let kind = shared.core.registry.slot_meta(model).kind;
    shared.queue.note_backend_sweep(kind, rows as u64);
    debug_assert_eq!(outputs.len(), guard.0.len());
    for ((slot, output), (slo, deadline, submitted_at, tenant)) in
        guard.0.iter().zip(outputs).zip(&metas)
    {
        let at = slot.fulfill(output);
        shared.queue.note_served(
            *slo,
            *tenant,
            deadline.is_some(),
            deadline.is_some_and(|d| at > d),
            at.saturating_duration_since(*submitted_at),
        );
        shared.core.registry.release(model);
    }
    // All fulfilled; the guard's abandon() calls are now no-ops.
}

/// Executes one oversized sweep cooperatively: the coalesced rows are
/// split into segments of at most `min(shard_rows, max_batch)` rows — the
/// sweep cap stays in force, since the shared segment path does no
/// internal chunking — published to the shard pool, and executed by
/// whichever workers steal them; this coordinator drains the pool too
/// while it waits. Segment outputs are rejoined by exact concatenation
/// and sliced back per request, bit-identical to the unsharded sweep
/// (every layer processes batch rows independently; `sharded_equivalence`
/// and the serving tests pin this).
fn infer_sharded(
    shared: &SessionShared,
    model: ModelId,
    slo: Slo,
    inputs: &[Tensor],
    rows: usize,
) -> Vec<Tensor> {
    let owned;
    let coalesced: &Tensor = if inputs.len() == 1 {
        &inputs[0]
    } else {
        owned = Tensor::concat_outer(&inputs.iter().collect::<Vec<_>>());
        &owned
    };
    let seg_rows = shared
        .cfg
        .shard_rows
        .unwrap()
        .min(shared.cfg.max_batch.unwrap_or(usize::MAX));
    let plan = ShardPlan::split_max(rows, seg_rows);
    let join = Arc::new(ShardJoin::new(plan.num_shards()));
    shared
        .queue
        .push_shards(plan.iter().enumerate().map(|(index, seg)| ShardTask {
            model: model.0,
            segment: coalesced.slice_outer(seg.start, seg.end),
            index,
            slo,
            join: join.clone(),
        }));
    // Cooperative wait: keep stealing shard tasks (ours or another
    // coordinator's) while our join is incomplete; block only when the
    // pool is empty — every queued task is then in flight on some worker,
    // so the join (or a failure) is guaranteed to resolve.
    let parts = loop {
        if join.is_done() {
            break join.wait();
        }
        match shared.queue.try_pop_shard() {
            Some(task) => run_shard(shared, task),
            None => break join.wait(),
        }
    };
    let merged = Tensor::concat_outer(&parts.iter().collect::<Vec<_>>());
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut start = 0;
    for input in inputs {
        let b = input.dim(0);
        outputs.push(merged.slice_outer(start, start + b));
        start += b;
    }
    outputs
}
