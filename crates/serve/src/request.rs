//! The unified request builder: one submission type instead of a
//! `submit`/`submit_with`/`submit_to`/`submit_to_with` method explosion.
//!
//! ```text
//! Request::to("resnet8")        // or Request::to_id(model_id)
//!     .batch(input)             // [B, C, H, W] tensor (required)
//!     .slo(Slo::Latency)        // default: Slo::Bulk
//!     .deadline(d)              // default: none
//!     .weight(2.0)              // aging-rate multiplier, default 1.0
//! ```
//!
//! A `Request` is inert until handed to
//! [`ServeSession::submit`](crate::ServeSession::submit), which resolves
//! the target against the registry and admits it into the queue.

use crate::queue::Slo;
use crate::registry::ModelId;
use cq_tensor::Tensor;
use std::time::Duration;

/// A tenant identity, attached to a request with
/// [`Request::tenant`](Request::tenant). Tenants configured via
/// [`TenantSpec`](crate::TenantSpec) get their configured weight and
/// quotas; unknown tenants are admitted with weight 1 and no quotas;
/// untagged requests ride the built-in `"default"` tenant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantId(pub String);

impl TenantId {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl<S: Into<String>> From<S> for TenantId {
    fn from(name: S) -> Self {
        TenantId(name.into())
    }
}

/// Where a request is going: a model name (resolved at submission) or a
/// pre-resolved registry handle (skips the name lookup on hot paths).
#[derive(Debug, Clone)]
pub(crate) enum Target {
    /// Resolved against the registry by `ServeSession::submit`.
    Name(String),
    /// Already resolved (from [`ServeSession::model_id`](crate::ServeSession::model_id)
    /// or [`ModelRegistry::register`](crate::ModelRegistry::register)).
    Id(ModelId),
}

/// One serving request, built fluently and submitted through
/// [`ServeSession::submit`](crate::ServeSession::submit).
///
/// Defaults: [`Slo::Bulk`], no deadline, aging weight `1.0`. The input
/// batch is **required** — submitting without one fails with
/// [`SubmitError::MissingInput`](crate::SubmitError).
#[derive(Debug, Clone)]
pub struct Request {
    pub(crate) target: Target,
    pub(crate) input: Option<Tensor>,
    pub(crate) slo: Slo,
    pub(crate) deadline: Option<Duration>,
    pub(crate) weight: f32,
    pub(crate) tenant: Option<TenantId>,
}

impl Request {
    fn with_target(target: Target) -> Self {
        Self {
            target,
            input: None,
            slo: Slo::Bulk,
            deadline: None,
            weight: 1.0,
            tenant: None,
        }
    }

    /// Starts a request to the named model (resolved at submission;
    /// unknown names fail with
    /// [`SubmitError::UnknownModel`](crate::SubmitError)).
    pub fn to(model: impl Into<String>) -> Self {
        Self::with_target(Target::Name(model.into()))
    }

    /// Starts a request to a pre-resolved [`ModelId`] (skips the name
    /// lookup — use for hot submission loops).
    pub fn to_id(model: ModelId) -> Self {
        Self::with_target(Target::Id(model))
    }

    /// The input batch, `[B, C, H, W]`. Required.
    pub fn batch(mut self, input: Tensor) -> Self {
        self.input = Some(input);
        self
    }

    /// The request's [`Slo`] class (default [`Slo::Bulk`]).
    pub fn slo(mut self, slo: Slo) -> Self {
        self.slo = slo;
        self
    }

    /// Completion deadline relative to submission. A deadline-expired
    /// request is still served bit-exactly — the violation is recorded in
    /// [`Completed::missed`](crate::Completed) and the per-class stats.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Aging-rate multiplier under
    /// [`SchedulerPolicy::Aging`](crate::SchedulerPolicy): the request's
    /// weighted queue age is `elapsed × weight`, so weight `2.0` crosses
    /// `bulk_max_age` twice as fast and `0.5` half as fast. Ignored under
    /// [`SchedulerPolicy::Strict`](crate::SchedulerPolicy) and for
    /// latency-class requests (which are never the aged party). Default
    /// `1.0`.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is finite and positive.
    pub fn weight(mut self, weight: f32) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "request weight must be finite and positive, got {weight}"
        );
        self.weight = weight;
        self
    }

    /// Tags the request with a tenant for weighted-fair scheduling and
    /// quota accounting (see [`TenantSpec`](crate::TenantSpec)). Untagged
    /// requests ride the built-in `"default"` tenant.
    pub fn tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let r = Request::to("m");
        assert!(matches!(&r.target, Target::Name(n) if n == "m"));
        assert!(r.input.is_none());
        assert_eq!(r.slo, Slo::Bulk);
        assert_eq!(r.deadline, None);
        assert_eq!(r.weight, 1.0);
        assert_eq!(r.tenant, None, "untagged by default");

        let r = Request::to_id(ModelId(3))
            .batch(Tensor::zeros(&[1, 1, 1, 1]))
            .slo(Slo::Latency)
            .deadline(Duration::from_millis(5))
            .weight(2.5)
            .tenant("acme");
        assert!(matches!(r.target, Target::Id(ModelId(3))));
        assert!(r.input.is_some());
        assert_eq!(r.slo, Slo::Latency);
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
        assert_eq!(r.weight, 2.5);
        assert_eq!(r.tenant, Some(TenantId("acme".into())));
        assert_eq!(r.tenant.unwrap().name(), "acme");
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_weight_is_rejected() {
        let _ = Request::to("m").weight(0.0);
    }
}
