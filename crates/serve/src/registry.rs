//! Multi-model residency: a registry mapping model ids to independently
//! frozen [`PreparedCimModel`]s.
//!
//! Each resident model sits behind its own reader-writer lock and carries
//! its own frozen weights and scratch buffers. Coalesced sweeps take the
//! write lock (one scratch, one crossbar program), so sweeps into one
//! model serialize while workers serve different models concurrently.
//! Batch-segment **shards** take the read lock and run through the
//! shared-state path ([`PreparedCimModel::infer_shared`]), so every
//! worker can execute a segment of the same oversized sweep at once.
//! Outputs are bit-identical to calling the standalone `PreparedCimModel`
//! directly — residency changes scheduling only.

use cq_core::{BackendError, BackendKind, BackendSet, PreparedCimModel};
use cq_tensor::Tensor;
use std::sync::RwLock;

/// Opaque handle to a registered model (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelId(pub(crate) usize);

/// The resident model set of a [`CimServer`](crate::CimServer).
#[derive(Default)]
pub struct ModelRegistry {
    models: Vec<(String, RwLock<PreparedCimModel>)>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a registry from the `(name, model)` pairs a
    /// [`ServeSession::shutdown`](crate::ServeSession::shutdown) (or
    /// [`into_models`](ModelRegistry::into_models)) handed back,
    /// preserving registration order — so [`ModelId`]s resolved against
    /// the dissolved registry stay valid against the rebuilt one.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn from_models(models: Vec<(String, PreparedCimModel)>) -> Self {
        let mut registry = Self::new();
        for (name, model) in models {
            registry.register(name, model);
        }
        registry
    }

    /// Registers `model` under `id` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn register(&mut self, id: impl Into<String>, model: PreparedCimModel) -> ModelId {
        let id = id.into();
        assert!(self.id(&id).is_none(), "model id '{id}' already registered");
        self.models.push((id, RwLock::new(model)));
        ModelId(self.models.len() - 1)
    }

    /// Looks up a model id by name.
    pub fn id(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|(n, _)| n == name).map(ModelId)
    }

    /// Name of a registered model.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this registry.
    pub fn name(&self, id: ModelId) -> &str {
        &self.models[id.0].0
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Write-locks model `id` and serves `requests` through its coalescing
    /// [`PreparedCimModel::infer_batch`].
    pub fn infer_batch(&self, id: ModelId, requests: &[Tensor]) -> Vec<Tensor> {
        self.models[id.0].1.write().unwrap().infer_batch(requests)
    }

    /// Read-locks model `id` and serves one batch segment through the
    /// shared-state path — many workers may do this concurrently on one
    /// model (see [`PreparedCimModel::infer_shared`]).
    pub fn infer_shared(&self, id: ModelId, segment: &Tensor) -> Tensor {
        self.models[id.0].1.read().unwrap().infer_shared(segment)
    }

    /// Caps every resident model's sweep size (see
    /// [`PreparedCimModel::set_max_batch`]).
    pub fn set_max_batch(&mut self, max_batch: Option<usize>) {
        for (_, m) in &mut self.models {
            m.get_mut().unwrap().set_max_batch(max_batch);
        }
    }

    /// Sets the row-tile shard count of every resident model's frozen
    /// convolutions (see [`PreparedCimModel::set_row_tile_shards`]).
    pub fn set_row_tile_shards(&mut self, shards: Option<usize>) {
        for (_, m) in &mut self.models {
            m.get_mut().unwrap().set_row_tile_shards(shards);
        }
    }

    /// Installs the execution-backend fallback chain on every resident
    /// model's frozen convolutions (see
    /// [`PreparedCimModel::set_backends`] — bit-identical outputs
    /// across backends).
    ///
    /// # Errors
    ///
    /// The first [`BackendError`] hit; every model is still attempted, so
    /// on error some models may carry the new chain and others their old
    /// one — re-install a satisfiable chain to restore uniformity.
    pub fn set_backends(&mut self, backends: &BackendSet) -> Result<(), BackendError> {
        let mut first_err = None;
        for (_, m) in &mut self.models {
            if let Err(e) = m.get_mut().unwrap().set_backends(backends.clone()) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Legacy kernel-family shorthand for
    /// [`set_backends`](ModelRegistry::set_backends).
    ///
    /// # Errors
    ///
    /// See [`set_backends`](ModelRegistry::set_backends).
    pub fn set_psum_kernel(&mut self, kernel: cq_core::PsumKernel) -> Result<(), BackendError> {
        self.set_backends(&kernel.into())
    }

    /// The primary (most-common active) backend of each resident model,
    /// in registration order — [`BackendKind::SimdF32`] for a model with
    /// no frozen CIM convolutions (its layers run the plain f32 ops).
    /// Used to attribute per-backend serving counters.
    pub fn primary_backends(&mut self) -> Vec<BackendKind> {
        self.models
            .iter_mut()
            .map(|(_, m)| {
                m.get_mut()
                    .unwrap()
                    .primary_backend()
                    .unwrap_or(BackendKind::SimdF32)
            })
            .collect()
    }

    /// Active frozen-convolution counts per [`BackendKind::index`],
    /// summed over every resident model.
    pub fn backend_layer_counts(&mut self) -> [usize; 3] {
        let mut totals = [0usize; 3];
        for (_, m) in &mut self.models {
            let counts = m.get_mut().unwrap().backend_layer_counts();
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
        }
        totals
    }

    /// Dissolves the registry, returning the resident models.
    pub fn into_models(self) -> Vec<(String, PreparedCimModel)> {
        self.models
            .into_iter()
            .map(|(n, m)| (n, m.into_inner().unwrap()))
            .collect()
    }
}
