//! Multi-model residency: a registry mapping model ids to independently
//! frozen [`PreparedCimModel`]s — **mutable on a live session**.
//!
//! Each resident model sits in a slot behind its own reader-writer lock
//! and carries its own frozen weights and scratch buffers. Coalesced
//! sweeps take the write lock (one scratch, one crossbar program), so
//! sweeps into one model serialize while workers serve different models
//! concurrently. Batch-segment **shards** take the read lock and run
//! through the shared-state path ([`PreparedCimModel::infer_shared`]), so
//! every worker can execute a segment of the same oversized sweep at
//! once. Outputs are bit-identical to calling the standalone
//! `PreparedCimModel` directly — residency changes scheduling only.
//!
//! **Hot-swap.** The slot list itself sits behind a `RwLock`, so
//! [`ServeSession::register`](crate::ServeSession::register) and
//! [`ServeSession::evict`](crate::ServeSession::evict) mutate the
//! resident set while workers serve. Eviction is *draining*: the slot is
//! atomically hidden from name lookup (new submissions get
//! [`SubmitError::UnknownModel`](crate::SubmitError)), in-flight requests
//! against it complete normally, and the returned [`EvictTicket`]
//! resolves with the reclaimed model once the last one drains. Slots are
//! never removed mid-session — a [`ModelId`] is a stable slot index — and
//! a name can be re-registered after eviction (lookup resolves to the
//! newest live slot).

use crate::queue::SubmitError;
use cq_core::{BackendError, BackendKind, BackendSet, PreparedCimModel};
use cq_tensor::Tensor;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Opaque handle to a registered model (a stable slot index — eviction
/// tombstones a slot, it never shifts later ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelId(pub(crate) usize);

/// Why a live registry mutation ([`ServeSession::register`](crate::ServeSession::register)
/// / [`ServeSession::evict`](crate::ServeSession::evict)) was refused.
/// Recoverable: variants that consumed a model hand it back.
pub enum SwapError {
    /// A live model already holds this name; the offered model is handed
    /// back untouched. Registering the same name under a *different*
    /// quantization scheme is deliberately this same recoverable error —
    /// never a silent overwrite — and `existing_scheme` names the scheme
    /// of the live holder so the caller can tell the two cases apart.
    DuplicateName {
        /// The contested name.
        name: String,
        /// Scheme of the live model already holding the name.
        existing_scheme: String,
        /// The model that was not registered.
        model: PreparedCimModel,
    },
    /// The session's [`ServeConfig::scheme_allowlist`](crate::ServeConfig)
    /// does not admit the offered model's quantization scheme; the model
    /// is handed back untouched.
    SchemeNotAllowed {
        /// The refused model's scheme name.
        scheme: String,
        /// The model that was not registered.
        model: PreparedCimModel,
    },
    /// No live model with this name (already evicted, or never
    /// registered).
    UnknownModel(String),
    /// The session's configured backend chain cannot execute the offered
    /// model; it is handed back (with whatever chain prefix installed —
    /// re-register after re-freezing or fixing the chain).
    Backend {
        /// The install failure.
        error: BackendError,
        /// The model that was not registered.
        model: PreparedCimModel,
    },
}

impl std::fmt::Debug for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::DuplicateName {
                name,
                existing_scheme,
                ..
            } => f
                .debug_struct("DuplicateName")
                .field("name", name)
                .field("existing_scheme", existing_scheme)
                .finish_non_exhaustive(),
            SwapError::SchemeNotAllowed { scheme, .. } => f
                .debug_struct("SchemeNotAllowed")
                .field("scheme", scheme)
                .finish_non_exhaustive(),
            SwapError::UnknownModel(name) => f.debug_tuple("UnknownModel").field(name).finish(),
            SwapError::Backend { error, .. } => f
                .debug_struct("Backend")
                .field("error", error)
                .finish_non_exhaustive(),
        }
    }
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::DuplicateName {
                name,
                existing_scheme,
                ..
            } => {
                write!(
                    f,
                    "a live model named '{name}' (scheme '{existing_scheme}') is already registered"
                )
            }
            SwapError::SchemeNotAllowed { scheme, .. } => {
                write!(
                    f,
                    "scheme '{scheme}' is not in the session's scheme allowlist"
                )
            }
            SwapError::UnknownModel(name) => write!(f, "no live model named '{name}'"),
            SwapError::Backend { error, .. } => {
                write!(f, "backend chain cannot execute the model: {error}")
            }
        }
    }
}

/// Where an eviction delivers the reclaimed model.
struct EvictState {
    model: Mutex<Option<PreparedCimModel>>,
    ready: Condvar,
}

/// Resolves with the reclaimed [`PreparedCimModel`] once every in-flight
/// request against the evicted model has drained. Returned by
/// [`ServeSession::evict`](crate::ServeSession::evict).
///
/// Mirrors the request [`Ticket`](crate::Ticket) surface: blocking
/// [`wait`](EvictTicket::wait), non-blocking
/// [`try_wait`](EvictTicket::try_wait), bounded
/// [`wait_timeout`](EvictTicket::wait_timeout). The ticket outlives its
/// session — [`ServeSession::shutdown`](crate::ServeSession::shutdown)
/// drains everything, so an unresolved ticket resolves at shutdown at the
/// latest.
pub struct EvictTicket {
    state: Arc<EvictState>,
    name: String,
}

impl std::fmt::Debug for EvictTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvictTicket")
            .field("name", &self.name)
            .field("ready", &self.is_ready())
            .finish_non_exhaustive()
    }
}

impl EvictTicket {
    /// The evicted model's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the model has drained — a following
    /// [`try_wait`](EvictTicket::try_wait) will not block.
    pub fn is_ready(&self) -> bool {
        self.state.model.lock().unwrap().is_some()
    }

    /// Blocks until every in-flight request against the model has drained,
    /// then hands the model back.
    pub fn wait(self) -> PreparedCimModel {
        let mut slot = self.state.model.lock().unwrap();
        loop {
            match slot.take() {
                Some(model) => return model,
                None => slot = self.state.ready.wait(slot).unwrap(),
            }
        }
    }

    /// Non-blocking poll: `Ok(model)` once drained, `Err(self)` — the
    /// ticket handed back, still valid — while requests are in flight.
    pub fn try_wait(self) -> Result<PreparedCimModel, EvictTicket> {
        let taken = self.state.model.lock().unwrap().take();
        match taken {
            Some(model) => Ok(model),
            None => Err(self),
        }
    }

    /// Blocks for at most `timeout`: `Ok(model)` when it drained in time,
    /// `Err(self)` on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<PreparedCimModel, EvictTicket> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.model.lock().unwrap();
        loop {
            if let Some(model) = slot.take() {
                return Ok(model);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            slot = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap()
                .0;
        }
    }
}

/// Liveness bookkeeping of one slot.
struct SlotLife {
    /// Requests admitted against this slot and not yet fulfilled.
    in_flight: u64,
    /// Set by eviction: hidden from lookup, draining.
    evicted: bool,
    /// Where to deliver the model once `in_flight` hits zero after
    /// eviction.
    reclaim: Option<Arc<EvictState>>,
}

/// Backend attribution snapshot of one slot, refreshed whenever the
/// model's chain is (re)installed — read by workers without touching the
/// model lock.
#[derive(Clone, Copy)]
pub(crate) struct SlotMeta {
    pub(crate) kind: BackendKind,
    pub(crate) layers: [usize; 3],
}

/// One residency slot: name, quantization-scheme attribution, the model
/// (absent once reclaimed), liveness, and the backend-attribution
/// snapshot.
struct Slot {
    name: String,
    /// The model's [`QuantScheme`](cq_core::QuantScheme) name, sniffed at
    /// registration ([`PreparedCimModel::scheme`]) — immutable per slot,
    /// so stats scrapes read it without any model lock.
    scheme: String,
    model: RwLock<Option<PreparedCimModel>>,
    life: Mutex<SlotLife>,
    meta: Mutex<SlotMeta>,
}

impl Slot {
    fn new(name: String, scheme: String, model: PreparedCimModel, meta: SlotMeta) -> Arc<Self> {
        Arc::new(Slot {
            name,
            scheme,
            model: RwLock::new(Some(model)),
            life: Mutex::new(SlotLife {
                in_flight: 0,
                evicted: false,
                reclaim: None,
            }),
            meta: Mutex::new(meta),
        })
    }

    fn is_live(&self) -> bool {
        !self.life.lock().unwrap().evicted
    }

    /// Pulls the model out of the slot and delivers it to the evict
    /// ticket. Caller guarantees no in-flight work references the model.
    fn deliver(&self, reclaim: &EvictState) {
        let model = self
            .model
            .write()
            .unwrap()
            .take()
            .expect("evicted slot delivered twice");
        *reclaim.model.lock().unwrap() = Some(model);
        reclaim.ready.notify_all();
    }
}

/// Computes the attribution snapshot of a model (see [`SlotMeta`]).
fn meta_of(model: &mut PreparedCimModel) -> SlotMeta {
    SlotMeta {
        kind: model.primary_backend().unwrap_or(BackendKind::SimdF32),
        layers: model.backend_layer_counts(),
    }
}

/// The resident model set of a [`CimServer`](crate::CimServer) — and, on
/// a live [`ServeSession`](crate::ServeSession), a hot-swappable one (see
/// the module docs).
#[derive(Default)]
pub struct ModelRegistry {
    slots: RwLock<Vec<Arc<Slot>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a registry from the `(name, model)` pairs a
    /// [`ServeSession::shutdown`](crate::ServeSession::shutdown) (or
    /// [`into_models`](ModelRegistry::into_models)) handed back,
    /// preserving order — so, when no model was evicted mid-session,
    /// [`ModelId`]s resolved against the dissolved registry stay valid
    /// against the rebuilt one (evictions compact the handed-back list,
    /// shifting later ids).
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn from_models(models: Vec<(String, PreparedCimModel)>) -> Self {
        let mut registry = Self::new();
        for (name, model) in models {
            registry.register(name, model);
        }
        registry
    }

    /// A snapshot of the slot list (so callers never hold the list lock
    /// while taking a model lock).
    fn slots(&self) -> Vec<Arc<Slot>> {
        self.slots.read().unwrap().clone()
    }

    fn slot(&self, id: ModelId) -> Arc<Slot> {
        self.slots.read().unwrap()[id.0].clone()
    }

    /// Registers `model` under `name` and returns its handle
    /// (pre-session surface; panics on conflict like a bad config would).
    ///
    /// # Panics
    ///
    /// Panics if a live model already holds `name`.
    pub fn register(&mut self, name: impl Into<String>, mut model: PreparedCimModel) -> ModelId {
        let scheme = model.scheme();
        match self.register_live(
            name,
            scheme,
            model,
            SlotMeta {
                kind: BackendKind::SimdF32,
                layers: [0; 3],
            },
        ) {
            Ok(id) => id,
            Err(SwapError::DuplicateName { name, .. }) => {
                panic!("model id '{name}' already registered")
            }
            Err(_) => unreachable!(),
        }
    }

    /// Shared-path registration with a precomputed attribution snapshot —
    /// the hot-swap seam used by
    /// [`ServeSession::register`](crate::ServeSession::register).
    ///
    /// # Errors
    ///
    /// [`SwapError::DuplicateName`] (model handed back, attributing the
    /// live holder's scheme) when a live model already holds `name` —
    /// including the same name offered under a different scheme.
    pub(crate) fn register_live(
        &self,
        name: impl Into<String>,
        scheme: String,
        model: PreparedCimModel,
        meta: SlotMeta,
    ) -> Result<ModelId, SwapError> {
        let name = name.into();
        let mut slots = self.slots.write().unwrap();
        if let Some(held) = slots.iter().find(|s| s.name == name && s.is_live()) {
            return Err(SwapError::DuplicateName {
                name,
                existing_scheme: held.scheme.clone(),
                model,
            });
        }
        slots.push(Slot::new(name, scheme, model, meta));
        Ok(ModelId(slots.len() - 1))
    }

    /// Evicts the newest live model named `name`: hides it from lookup
    /// (new submissions fail with
    /// [`SubmitError::UnknownModel`](crate::SubmitError)) and returns a
    /// ticket that resolves with the model once its in-flight requests
    /// drain — immediately, when it is idle.
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownModel`] when no live model holds `name`.
    pub(crate) fn evict(&self, name: &str) -> Result<EvictTicket, SwapError> {
        let slot = {
            let slots = self.slots.read().unwrap();
            match slots.iter().rev().find(|s| s.name == name && s.is_live()) {
                Some(slot) => slot.clone(),
                None => return Err(SwapError::UnknownModel(name.to_string())),
            }
        };
        let state = Arc::new(EvictState {
            model: Mutex::new(None),
            ready: Condvar::new(),
        });
        let deliver_now = {
            let mut life = slot.life.lock().unwrap();
            if life.evicted {
                // Lost a race with a concurrent evict of the same name.
                return Err(SwapError::UnknownModel(name.to_string()));
            }
            life.evicted = true;
            if life.in_flight == 0 {
                true
            } else {
                life.reclaim = Some(state.clone());
                false
            }
        };
        if deliver_now {
            slot.deliver(&state);
        }
        Ok(EvictTicket {
            state,
            name: name.to_string(),
        })
    }

    /// Delivers any eviction still waiting on drained work — the shutdown
    /// backstop: after workers joined, nothing is in flight, so a reclaim
    /// left pending (e.g. by a panicked worker that never released its
    /// requests) must not leave its ticket hanging.
    pub(crate) fn deliver_pending_evictions(&self) {
        for slot in self.slots() {
            let reclaim = {
                let mut life = slot.life.lock().unwrap();
                life.in_flight = 0;
                life.reclaim.take()
            };
            if let Some(reclaim) = reclaim {
                if slot.model.read().unwrap().is_some() {
                    slot.deliver(&reclaim);
                }
            }
        }
    }

    /// Counts one admitted request against slot `id`, atomically checking
    /// liveness — the eviction drain barrier.
    ///
    /// # Errors
    ///
    /// The evicted/unknown model's name, for
    /// [`SubmitError::UnknownModel`](crate::SubmitError).
    pub(crate) fn admit(&self, id: ModelId) -> Result<(), SubmitError> {
        let slot = match self.slots.read().unwrap().get(id.0) {
            Some(slot) => slot.clone(),
            None => return Err(SubmitError::UnknownModel(format!("#{}", id.0))),
        };
        let mut life = slot.life.lock().unwrap();
        if life.evicted {
            return Err(SubmitError::UnknownModel(slot.name.clone()));
        }
        life.in_flight += 1;
        Ok(())
    }

    /// Resolves a name to a live slot and admits one request against it
    /// in the same breath (no lookup-then-evict race).
    pub(crate) fn admit_name(&self, name: &str) -> Result<ModelId, SubmitError> {
        let (idx, slot) = {
            let slots = self.slots.read().unwrap();
            match slots
                .iter()
                .enumerate()
                .rev()
                .find(|(_, s)| s.name == name && s.is_live())
            {
                Some((i, slot)) => (i, slot.clone()),
                None => return Err(SubmitError::UnknownModel(name.to_string())),
            }
        };
        let mut life = slot.life.lock().unwrap();
        if life.evicted {
            return Err(SubmitError::UnknownModel(name.to_string()));
        }
        life.in_flight += 1;
        Ok(ModelId(idx))
    }

    /// Releases one admitted request against slot `id` (fulfilment or a
    /// failed submission), delivering the model to a waiting eviction
    /// when this was the last one.
    pub(crate) fn release(&self, id: ModelId) {
        let slot = self.slot(id);
        let reclaim = {
            let mut life = slot.life.lock().unwrap();
            life.in_flight = life.in_flight.saturating_sub(1);
            if life.in_flight == 0 {
                life.reclaim.take()
            } else {
                None
            }
        };
        if let Some(reclaim) = reclaim {
            slot.deliver(&reclaim);
        }
    }

    /// Looks up the newest **live** model id by name.
    pub fn id(&self, name: &str) -> Option<ModelId> {
        let slots = self.slots.read().unwrap();
        slots
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| s.name == name && s.is_live())
            .map(|(i, _)| ModelId(i))
    }

    /// Name of a registered model (evicted slots keep their name).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this registry.
    pub fn name(&self, id: ModelId) -> String {
        self.slots.read().unwrap()[id.0].name.clone()
    }

    /// Number of **live** resident models.
    pub fn len(&self) -> usize {
        self.slots
            .read()
            .unwrap()
            .iter()
            .filter(|s| s.is_live())
            .count()
    }

    /// Whether no model is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(name, scheme, evicted)` of every slot, in slot (= [`ModelId`])
    /// order — the naming/attribution side of per-model stats.
    pub(crate) fn slot_names(&self) -> Vec<(String, String, bool)> {
        self.slots()
            .iter()
            .map(|s| (s.name.clone(), s.scheme.clone(), !s.is_live()))
            .collect()
    }

    /// Quantization-scheme name of a registered model (evicted slots keep
    /// theirs) — the key [`ServeStats`](crate::ServeStats) aggregates
    /// per-scheme image counts under.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this registry.
    pub fn scheme(&self, id: ModelId) -> String {
        self.slots.read().unwrap()[id.0].scheme.clone()
    }

    /// The attribution snapshot of slot `id` (no model lock taken).
    pub(crate) fn slot_meta(&self, id: ModelId) -> SlotMeta {
        *self.slot(id).meta.lock().unwrap()
    }

    /// Write-locks model `id` and serves `requests` through its coalescing
    /// [`PreparedCimModel::infer_batch`].
    pub(crate) fn infer_batch(&self, id: ModelId, requests: &[Tensor]) -> Vec<Tensor> {
        self.slot(id)
            .model
            .write()
            .unwrap()
            .as_mut()
            .expect("model evicted with requests in flight")
            .infer_batch(requests)
    }

    /// Read-locks model `id` and serves one batch segment through the
    /// shared-state path — many workers may do this concurrently on one
    /// model (see [`PreparedCimModel::infer_shared`]).
    pub(crate) fn infer_shared(&self, id: ModelId, segment: &Tensor) -> Tensor {
        self.slot(id)
            .model
            .read()
            .unwrap()
            .as_ref()
            .expect("model evicted with shards in flight")
            .infer_shared(segment)
    }

    /// Runs `f` over every live model (write-locked one at a time, list
    /// lock not held), collecting the first error.
    fn for_each_live<E>(
        &self,
        mut f: impl FnMut(&Slot, &mut PreparedCimModel) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut first_err = None;
        for slot in self.slots() {
            let mut guard = slot.model.write().unwrap();
            if let Some(model) = guard.as_mut() {
                if let Err(e) = f(&slot, model) {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Caps every live model's sweep size (see
    /// [`PreparedCimModel::set_max_batch`]).
    pub fn set_max_batch(&mut self, max_batch: Option<usize>) {
        let _ = self.for_each_live(|_, m| {
            m.set_max_batch(max_batch);
            Ok::<(), ()>(())
        });
    }

    /// Sets the row-tile shard count of every live model's frozen
    /// convolutions (see [`PreparedCimModel::set_row_tile_shards`]).
    pub fn set_row_tile_shards(&mut self, shards: Option<usize>) {
        let _ = self.for_each_live(|_, m| {
            m.set_row_tile_shards(shards);
            Ok::<(), ()>(())
        });
    }

    /// Installs the execution-backend fallback chain on every live
    /// model's frozen convolutions (see
    /// [`PreparedCimModel::set_backends`] — bit-identical outputs
    /// across backends) and refreshes each slot's attribution snapshot.
    ///
    /// # Errors
    ///
    /// The first [`BackendError`] hit; every model is still attempted, so
    /// on error some models may carry the new chain and others their old
    /// one — re-install a satisfiable chain to restore uniformity.
    pub fn set_backends(&mut self, backends: &BackendSet) -> Result<(), BackendError> {
        self.for_each_live(|slot, m| {
            let result = m.set_backends(backends.clone());
            *slot.meta.lock().unwrap() = meta_of(m);
            result
        })
    }

    /// Legacy kernel-family shorthand for
    /// [`set_backends`](ModelRegistry::set_backends).
    ///
    /// # Errors
    ///
    /// See [`set_backends`](ModelRegistry::set_backends).
    pub fn set_psum_kernel(&mut self, kernel: cq_core::PsumKernel) -> Result<(), BackendError> {
        self.set_backends(&kernel.into())
    }

    /// The primary (most-common active) backend of each **live** resident
    /// model, in slot order — [`BackendKind::SimdF32`] for a model with
    /// no frozen CIM convolutions (its layers run the plain f32 ops).
    /// Used to attribute per-backend serving counters.
    ///
    /// Takes `&self` (per-slot locks, no exclusive registry access), so a
    /// live stats scrape can run concurrently with serving.
    pub fn primary_backends(&self) -> Vec<BackendKind> {
        self.slots()
            .iter()
            .filter(|s| s.is_live())
            .map(|s| s.meta.lock().unwrap().kind)
            .collect()
    }

    /// Active frozen-convolution counts per [`BackendKind::index`],
    /// summed over every live resident model.
    ///
    /// Takes `&self` (per-slot locks, no exclusive registry access), so a
    /// live stats scrape can run concurrently with serving.
    pub fn backend_layer_counts(&self) -> [usize; 3] {
        let mut totals = [0usize; 3];
        for slot in self.slots() {
            if !slot.is_live() {
                continue;
            }
            let layers = slot.meta.lock().unwrap().layers;
            for (t, c) in totals.iter_mut().zip(layers) {
                *t += c;
            }
        }
        totals
    }

    /// Dissolves the registry, returning the **live** resident models in
    /// slot order.
    pub fn into_models(self) -> Vec<(String, PreparedCimModel)> {
        self.slots
            .into_inner()
            .unwrap()
            .into_iter()
            .filter_map(|slot| {
                let slot = Arc::try_unwrap(slot)
                    .ok()
                    .expect("registry dissolved while a worker holds a slot");
                let name = slot.name;
                slot.model.into_inner().unwrap().map(|m| (name, m))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> PreparedCimModel {
        use cq_nn::{Layer, Mode};
        let mut net = cq_core::build_cim_resnet(
            cq_nn::ResNetSpec::resnet8(2, 2),
            &cq_cim::CimConfig::tiny(),
            &cq_core::QuantScheme::ours(),
            7,
        );
        let warm = cq_tensor::CqRng::new(1).normal_tensor(&[1, 3, 8, 8], 1.0);
        let _ = net.forward(&warm, Mode::Eval);
        PreparedCimModel::new(Box::new(net))
    }

    #[test]
    fn evict_idle_model_resolves_immediately_and_hides_name() {
        let mut registry = ModelRegistry::new();
        let id = registry.register("m", tiny_model());
        assert_eq!(registry.id("m"), Some(id));
        let ticket = registry.evict("m").unwrap();
        assert!(ticket.is_ready(), "idle model delivers immediately");
        assert_eq!(registry.id("m"), None, "evicted name hidden from lookup");
        assert!(registry.is_empty());
        assert_eq!(registry.name(id), "m", "slot keeps its name");
        assert_eq!(
            registry.scheme(id),
            "paper-lsq-column",
            "slot keeps its sniffed scheme"
        );
        let model = ticket.wait();
        assert_eq!(
            registry.into_models().len(),
            0,
            "reclaimed model no longer in the registry"
        );
        drop(model);
    }

    #[test]
    fn evict_waits_for_in_flight_admissions() {
        let mut registry = ModelRegistry::new();
        let id = registry.register("m", tiny_model());
        registry.admit(id).unwrap();
        let ticket = registry.evict("m").unwrap();
        assert!(!ticket.is_ready(), "one request still in flight");
        let ticket = match ticket.try_wait() {
            Err(t) => t,
            Ok(_) => panic!("still draining"),
        };
        assert!(matches!(
            registry.admit(id),
            Err(SubmitError::UnknownModel(_))
        ));
        registry.release(id);
        let model = ticket
            .wait_timeout(Duration::from_secs(5))
            .expect("drained after release");
        drop(model);
    }

    #[test]
    fn reregistering_an_evicted_name_routes_to_the_new_slot() {
        let mut registry = ModelRegistry::new();
        let v1 = registry.register("m", tiny_model());
        let t = registry.evict("m").unwrap();
        let v2 = registry
            .register_live(
                "m",
                "paper-lsq-column".to_string(),
                t.wait(),
                SlotMeta {
                    kind: BackendKind::SimdF32,
                    layers: [0; 3],
                },
            )
            .unwrap();
        assert_ne!(v1, v2, "fresh slot");
        assert_eq!(registry.id("m"), Some(v2), "lookup finds the newest live");
        assert!(matches!(
            registry.admit(v1),
            Err(SubmitError::UnknownModel(_))
        ));
        registry.admit(v2).unwrap();
        registry.release(v2);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn swap_errors_hand_the_model_back() {
        let mut registry = ModelRegistry::new();
        registry.register("m", tiny_model());
        let meta = SlotMeta {
            kind: BackendKind::SimdF32,
            layers: [0; 3],
        };
        match registry.register_live("m", "bwma".to_string(), tiny_model(), meta) {
            Err(SwapError::DuplicateName {
                name,
                existing_scheme,
                model,
            }) => {
                assert_eq!(name, "m");
                assert_eq!(
                    existing_scheme, "paper-lsq-column",
                    "error attributes the live holder's scheme, not the offered one"
                );
                drop(model); // handed back, reusable
            }
            other => panic!("expected DuplicateName, got {other:?}"),
        }
        assert!(matches!(
            registry.evict("ghost"),
            Err(SwapError::UnknownModel(_))
        ));
    }
}
