//! Multi-model residency: a registry mapping model ids to independently
//! frozen [`PreparedCimModel`]s.
//!
//! Each resident model sits behind its own reader-writer lock and carries
//! its own frozen weights and scratch buffers. Coalesced sweeps take the
//! write lock (one scratch, one crossbar program), so sweeps into one
//! model serialize while workers serve different models concurrently.
//! Batch-segment **shards** take the read lock and run through the
//! shared-state path ([`PreparedCimModel::infer_shared`]), so every
//! worker can execute a segment of the same oversized sweep at once.
//! Outputs are bit-identical to calling the standalone `PreparedCimModel`
//! directly — residency changes scheduling only.

use cq_core::PreparedCimModel;
use cq_tensor::Tensor;
use std::sync::RwLock;

/// Opaque handle to a registered model (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelId(pub(crate) usize);

/// The resident model set of a [`CimServer`](crate::CimServer).
#[derive(Default)]
pub struct ModelRegistry {
    models: Vec<(String, RwLock<PreparedCimModel>)>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a registry from the `(name, model)` pairs a
    /// [`ServeSession::shutdown`](crate::ServeSession::shutdown) (or
    /// [`into_models`](ModelRegistry::into_models)) handed back,
    /// preserving registration order — so [`ModelId`]s resolved against
    /// the dissolved registry stay valid against the rebuilt one.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn from_models(models: Vec<(String, PreparedCimModel)>) -> Self {
        let mut registry = Self::new();
        for (name, model) in models {
            registry.register(name, model);
        }
        registry
    }

    /// Registers `model` under `id` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn register(&mut self, id: impl Into<String>, model: PreparedCimModel) -> ModelId {
        let id = id.into();
        assert!(self.id(&id).is_none(), "model id '{id}' already registered");
        self.models.push((id, RwLock::new(model)));
        ModelId(self.models.len() - 1)
    }

    /// Looks up a model id by name.
    pub fn id(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|(n, _)| n == name).map(ModelId)
    }

    /// Name of a registered model.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this registry.
    pub fn name(&self, id: ModelId) -> &str {
        &self.models[id.0].0
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Write-locks model `id` and serves `requests` through its coalescing
    /// [`PreparedCimModel::infer_batch`].
    pub fn infer_batch(&self, id: ModelId, requests: &[Tensor]) -> Vec<Tensor> {
        self.models[id.0].1.write().unwrap().infer_batch(requests)
    }

    /// Read-locks model `id` and serves one batch segment through the
    /// shared-state path — many workers may do this concurrently on one
    /// model (see [`PreparedCimModel::infer_shared`]).
    pub fn infer_shared(&self, id: ModelId, segment: &Tensor) -> Tensor {
        self.models[id.0].1.read().unwrap().infer_shared(segment)
    }

    /// Caps every resident model's sweep size (see
    /// [`PreparedCimModel::set_max_batch`]).
    pub fn set_max_batch(&mut self, max_batch: Option<usize>) {
        for (_, m) in &mut self.models {
            m.get_mut().unwrap().set_max_batch(max_batch);
        }
    }

    /// Sets the row-tile shard count of every resident model's frozen
    /// convolutions (see [`PreparedCimModel::set_row_tile_shards`]).
    pub fn set_row_tile_shards(&mut self, shards: Option<usize>) {
        for (_, m) in &mut self.models {
            m.get_mut().unwrap().set_row_tile_shards(shards);
        }
    }

    /// Selects the partial-sum kernel family of every resident model's
    /// frozen convolutions (see [`PreparedCimModel::set_psum_kernel`] —
    /// bit-identical outputs either way).
    pub fn set_psum_kernel(&mut self, kernel: cq_core::PsumKernel) {
        for (_, m) in &mut self.models {
            m.get_mut().unwrap().set_psum_kernel(kernel);
        }
    }

    /// Dissolves the registry, returning the resident models.
    pub fn into_models(self) -> Vec<(String, PreparedCimModel)> {
        self.models
            .into_iter()
            .map(|(n, m)| (n, m.into_inner().unwrap()))
            .collect()
    }
}
