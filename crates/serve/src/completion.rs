//! Multiplexed completion: wait on *any* of many in-flight tickets from
//! one client thread.
//!
//! A [`CompletionSet`] owns tickets and a shared ready-list. When a
//! ticket is inserted, its response slot is given a one-shot **watcher**;
//! the worker that fulfils (or abandons) the slot pushes the ticket's key
//! onto the ready-list and signals the set's condvar — so
//! [`wait_any`](CompletionSet::wait_any) blocks on one condvar for
//! hundreds of in-flight requests instead of one thread per ticket, with
//! no polling and no lost wakeups (the ready check and the wait happen
//! under the same lock). Hand-rolled on `std::sync` like the rest of the
//! workspace's offline dependency stack — no async runtime.
//!
//! Every resolution path returns the same [`Completed`] a blocking
//! [`Ticket::wait`] would have: the output tensor is moved, never
//! recomputed or copied, so multiplexed completion is trivially
//! bit-identical (and `tests/slo_stress.rs` pins it anyway).

use crate::queue::{Completed, Ticket};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The shared ready-list a slot watcher pushes into when its ticket
/// resolves.
pub(crate) struct ReadyList {
    ready: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

impl ReadyList {
    fn new() -> Self {
        Self {
            ready: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    /// Marks `key` resolved and wakes the waiting client. Called by the
    /// fulfilling worker (or by the insertion itself when the ticket was
    /// already resolved).
    pub(crate) fn push(&self, key: usize) {
        self.ready.lock().unwrap().push_back(key);
        self.cv.notify_all();
    }
}

/// Key of one ticket inside a [`CompletionSet`], returned by
/// [`insert`](CompletionSet::insert) and handed back on resolution so the
/// client can map completions to its own bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketKey(usize);

impl TicketKey {
    /// The key as a dense index: keys count up from 0 in insertion order,
    /// so they can index client-side metadata directly.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Owns many in-flight [`Ticket`]s and resolves them in completion order
/// from a single client thread.
///
/// Completions are delivered exactly once each, in the order workers
/// resolved them (ties broken by wakeup order). A ticket that was
/// **abandoned** (its worker panicked) propagates the panic from the
/// `wait_any`/`try_any` call that drains it — same contract as
/// [`Ticket::wait`].
///
/// The set is single-threaded on the client side (`&mut self` methods);
/// workers only touch the internal ready-list. Keys are never reused, so
/// memory grows with the total number of inserted tickets — recreate the
/// set per replay/session if that matters.
pub struct CompletionSet {
    list: Arc<ReadyList>,
    /// Slot `k` holds the pending ticket for key `k`; taken on resolution.
    pending: Vec<Option<Ticket>>,
    outstanding: usize,
}

impl Default for CompletionSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionSet {
    /// An empty set.
    pub fn new() -> Self {
        Self {
            list: Arc::new(ReadyList::new()),
            pending: Vec::new(),
            outstanding: 0,
        }
    }

    /// Adds a ticket to the set, returning its key. A ticket that already
    /// resolved is immediately ready.
    pub fn insert(&mut self, ticket: Ticket) -> TicketKey {
        let key = self.pending.len();
        ticket.watch(self.list.clone(), key);
        self.pending.push(Some(ticket));
        self.outstanding += 1;
        TicketKey(key)
    }

    /// Tickets not yet drained by `wait_any`/`try_any`.
    pub fn len(&self) -> usize {
        self.outstanding
    }

    /// Whether every inserted ticket has been drained.
    pub fn is_empty(&self) -> bool {
        self.outstanding == 0
    }

    /// Drains one resolved ticket without blocking; `None` when nothing
    /// has resolved yet (or the set is empty).
    ///
    /// # Panics
    ///
    /// Panics if the drained ticket was abandoned by a panicking worker.
    pub fn try_any(&mut self) -> Option<(TicketKey, Completed)> {
        let key = self.list.ready.lock().unwrap().pop_front()?;
        Some(self.resolve(key))
    }

    /// Blocks until any in-flight ticket resolves and drains it; `None`
    /// iff the set is empty (so `while let Some(..) = set.wait_any()`
    /// drains everything).
    ///
    /// # Panics
    ///
    /// Panics if the drained ticket was abandoned by a panicking worker.
    pub fn wait_any(&mut self) -> Option<(TicketKey, Completed)> {
        if self.outstanding == 0 {
            return None;
        }
        let mut ready = self.list.ready.lock().unwrap();
        loop {
            if let Some(key) = ready.pop_front() {
                drop(ready);
                return Some(self.resolve(key));
            }
            ready = self.list.cv.wait(ready).unwrap();
        }
    }

    /// Like [`wait_any`](CompletionSet::wait_any) but gives up after
    /// `timeout`: `None` means the set is empty **or** nothing resolved in
    /// time — check [`is_empty`](CompletionSet::is_empty) to tell them
    /// apart. Bounding every wait keeps a scheduler regression from
    /// hanging a replay loop (it fails loudly instead).
    ///
    /// # Panics
    ///
    /// Panics if the drained ticket was abandoned by a panicking worker.
    pub fn wait_any_timeout(&mut self, timeout: Duration) -> Option<(TicketKey, Completed)> {
        if self.outstanding == 0 {
            return None;
        }
        let deadline = Instant::now() + timeout;
        let mut ready = self.list.ready.lock().unwrap();
        loop {
            if let Some(key) = ready.pop_front() {
                drop(ready);
                return Some(self.resolve(key));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            ready = self.list.cv.wait_timeout(ready, deadline - now).unwrap().0;
        }
    }

    /// Takes the resolved ticket for `key` out of the pending table and
    /// completes it (non-blocking: its slot is already resolved).
    fn resolve(&mut self, key: usize) -> (TicketKey, Completed) {
        let ticket = self.pending[key]
            .take()
            .expect("completion key delivered twice");
        self.outstanding -= 1;
        (TicketKey(key), ticket.wait())
    }
}
