//! Serving observability primitives: log-bucketed latency histograms, the
//! queue-depth time series, per-tenant / per-model / worker-pool counter
//! blocks, and the Prometheus text-format rendering of a
//! [`ServeStats`](crate::ServeStats) snapshot.
//!
//! Everything here is plain counters — no background threads, no
//! allocation on the record path beyond the (bounded, decimating) depth
//! series — so the queue can update them under its own lock.

use crate::queue::ServeStats;
use std::time::Duration;

/// Number of log2 buckets in a [`LatencyHistogram`]. Bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds (bucket 0 additionally absorbs sub-µs
/// latencies), so 32 buckets span sub-microsecond to ~71 minutes.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log2-bucketed latency histogram: constant-size, mergeable, and
/// recordable under a lock without allocating.
///
/// Bucket `i` counts latencies in `[2^i, 2^(i+1))` microseconds; the last
/// bucket absorbs everything above. Quantiles are read back as the upper
/// bound of the bucket the quantile falls in, so a reported p99 is an
/// upper estimate with at most 2× resolution error — enough to steer
/// capacity, cheap enough to keep per tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }

    /// The bucket index a latency falls in.
    fn bucket_of(latency: Duration) -> usize {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        // floor(log2(us)) with us=0 landing in bucket 0.
        let idx = 63 - (us | 1).leading_zeros() as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.buckets[Self::bucket_of(latency)] += 1;
        self.count += 1;
        self.sum_us = self
            .sum_us
            .saturating_add(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded latencies (microsecond resolution).
    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_us)
    }

    /// The raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))` µs).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i`, in microseconds.
    pub fn bucket_upper_us(i: usize) -> u64 {
        1u64 << (i as u32 + 1)
    }

    /// Folds `other` into `self` (bucketwise add).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }

    /// The latency below which a `q` fraction (`0.0..=1.0`) of
    /// observations fall, as the upper bound of the bucket containing
    /// that rank — `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(Self::bucket_upper_us(i)));
            }
        }
        Some(Duration::from_micros(Self::bucket_upper_us(
            HISTOGRAM_BUCKETS - 1,
        )))
    }
}

/// One sample of the queue-depth time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSample {
    /// Offset from session start (first admission).
    pub at: Duration,
    /// Queue depth right after the admission that produced this sample.
    pub depth: usize,
}

/// Bounded queue-depth time series: samples every admission until the
/// buffer fills, then decimates (drop every other sample, double the
/// stride) so memory stays O(1) over arbitrarily long sessions while the
/// series keeps full time coverage.
#[derive(Debug, Clone, Default)]
pub(crate) struct DepthSeries {
    samples: Vec<DepthSample>,
    stride: u64,
    tick: u64,
}

/// Capacity at which the depth series decimates.
const DEPTH_SERIES_CAP: usize = 512;

impl DepthSeries {
    pub(crate) fn record(&mut self, at: Duration, depth: usize) {
        if self.stride == 0 {
            self.stride = 1;
        }
        self.tick += 1;
        if self.tick % self.stride != 0 {
            return;
        }
        self.samples.push(DepthSample { at, depth });
        if self.samples.len() >= DEPTH_SERIES_CAP {
            let mut keep = 0;
            self.samples.retain(|_| {
                keep += 1;
                keep % 2 == 1
            });
            self.stride *= 2;
        }
    }

    pub(crate) fn snapshot(&self) -> Vec<DepthSample> {
        self.samples.clone()
    }
}

/// Per-tenant serving counters (one entry per tenant that was configured
/// or ever submitted), in [`ServeStats::tenants`](crate::ServeStats).
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name (`"default"` for untagged requests).
    pub name: String,
    /// Weighted-fair scheduling weight.
    pub weight: f32,
    /// Requests admitted for this tenant.
    pub submitted: u64,
    /// Requests served for this tenant.
    pub served: u64,
    /// Images (batch rows) served for this tenant — the unit the
    /// weighted-fair scheduler balances.
    pub rows: u64,
    /// Submissions turned away because a quota was at its limit.
    pub quota_rejected: u64,
    /// Most admitted-but-unserved requests this tenant ever had — never
    /// exceeds its `max_in_flight` quota.
    pub peak_in_flight: usize,
    /// Log-bucketed submission-to-fulfilment latency histogram.
    pub histogram: LatencyHistogram,
}

/// Per-model serving counters, in [`ServeStats::models`](crate::ServeStats)
/// (slot order — evicted models keep their row).
#[derive(Debug, Clone, Default)]
pub struct ModelStats {
    /// Registered model name.
    pub name: String,
    /// Quantization-scheme name of the model
    /// ([`cq_core::QuantScheme::name`], sniffed at registration) — the key
    /// [`ServeStats::images_by_scheme`](crate::ServeStats::images_by_scheme)
    /// aggregates under. Empty on a raw queue snapshot; the session
    /// overlays it, like `name`.
    pub scheme: String,
    /// Requests served against this model.
    pub served: u64,
    /// Coalesced sweeps executed against it.
    pub sweeps: u64,
    /// Batch-segment shard tasks executed against it.
    pub shards: u64,
    /// Images (batch rows) swept through it.
    pub images: u64,
    /// Whether the model has been evicted from the live session.
    pub evicted: bool,
}

/// Worker-pool counters, in [`ServeStats::workers`](crate::ServeStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Configured lower bound of the pool.
    pub min: usize,
    /// Configured upper bound of the pool.
    pub max: usize,
    /// Worker threads alive at the snapshot.
    pub live: usize,
    /// Most workers ever alive at once.
    pub peak: usize,
    /// Worker threads spawned over the session (initial set included).
    pub spawned: u64,
    /// Grow + shrink events after the initial spawn — `0` for a fixed
    /// pool.
    pub resizes: u64,
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn push_metric_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders one histogram in Prometheus exposition format (cumulative
/// `_bucket{le=..}` rows in seconds, plus `_sum` and `_count`).
fn push_histogram(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        cumulative += c;
        // Only emit the populated prefix plus one empty tail bucket would
        // break cumulative semantics — emit every bound (32 rows) only
        // when populated; always emit +Inf.
        if c == 0 && cumulative == 0 {
            continue;
        }
        let le = LatencyHistogram::bucket_upper_us(i) as f64 / 1e6;
        out.push_str(&format!(
            "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!(
        "{name}_sum{{{labels_trim}}} {}\n",
        h.sum().as_secs_f64(),
        labels_trim = labels.trim_end_matches(',')
    ));
    out.push_str(&format!(
        "{name}_count{{{labels_trim}}} {}\n",
        h.count(),
        labels_trim = labels.trim_end_matches(',')
    ));
}

impl ServeStats {
    /// Renders the snapshot in the Prometheus text exposition format — a
    /// scrape body a sidecar can serve verbatim: global counters and
    /// gauges, per-class and per-tenant latency histograms (seconds), and
    /// per-model / per-backend / worker-pool counters.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);

        push_metric_header(
            &mut out,
            "cq_serve_requests_total",
            "counter",
            "Requests by admission outcome.",
        );
        out.push_str(&format!(
            "cq_serve_requests_total{{outcome=\"admitted\"}} {}\n",
            self.submitted
        ));
        out.push_str(&format!(
            "cq_serve_requests_total{{outcome=\"rejected\"}} {}\n",
            self.rejected
        ));
        out.push_str(&format!(
            "cq_serve_requests_total{{outcome=\"quota_rejected\"}} {}\n",
            self.quota_rejected
        ));
        push_metric_header(
            &mut out,
            "cq_serve_served_total",
            "counter",
            "Requests fulfilled.",
        );
        out.push_str(&format!("cq_serve_served_total {}\n", self.served));
        push_metric_header(
            &mut out,
            "cq_serve_sweeps_total",
            "counter",
            "Coalesced sweeps formed.",
        );
        out.push_str(&format!("cq_serve_sweeps_total {}\n", self.batches));
        push_metric_header(
            &mut out,
            "cq_serve_images_total",
            "counter",
            "Images (batch rows) swept.",
        );
        out.push_str(&format!("cq_serve_images_total {}\n", self.rows_swept));
        push_metric_header(
            &mut out,
            "cq_serve_queue_depth_peak",
            "gauge",
            "Deepest the queue ever got.",
        );
        out.push_str(&format!(
            "cq_serve_queue_depth_peak {}\n",
            self.peak_queue_depth
        ));
        push_metric_header(
            &mut out,
            "cq_serve_workers",
            "gauge",
            "Worker threads by pool dimension.",
        );
        for (dim, v) in [
            ("live", self.workers.live),
            ("min", self.workers.min),
            ("max", self.workers.max),
            ("peak", self.workers.peak),
        ] {
            out.push_str(&format!("cq_serve_workers{{dim=\"{dim}\"}} {v}\n"));
        }
        push_metric_header(
            &mut out,
            "cq_serve_worker_resizes_total",
            "counter",
            "Autoscaler grow+shrink events.",
        );
        out.push_str(&format!(
            "cq_serve_worker_resizes_total {}\n",
            self.workers.resizes
        ));
        push_metric_header(
            &mut out,
            "cq_serve_model_swaps_total",
            "counter",
            "Live registry churn events.",
        );
        out.push_str(&format!(
            "cq_serve_model_swaps_total{{op=\"register\"}} {}\n",
            self.hot_registered
        ));
        out.push_str(&format!(
            "cq_serve_model_swaps_total{{op=\"evict\"}} {}\n",
            self.evictions
        ));

        push_metric_header(
            &mut out,
            "cq_serve_latency_seconds",
            "histogram",
            "Submission-to-fulfilment latency by class.",
        );
        push_histogram(
            &mut out,
            "cq_serve_latency_seconds",
            "class=\"latency\",",
            &self.latency_hist,
        );
        push_histogram(
            &mut out,
            "cq_serve_latency_seconds",
            "class=\"bulk\",",
            &self.bulk_hist,
        );

        push_metric_header(
            &mut out,
            "cq_serve_tenant_served_total",
            "counter",
            "Requests served per tenant.",
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "cq_serve_tenant_served_total{{tenant=\"{}\"}} {}\n",
                escape_label(&t.name),
                t.served
            ));
        }
        push_metric_header(
            &mut out,
            "cq_serve_tenant_latency_seconds",
            "histogram",
            "Latency per tenant.",
        );
        for t in &self.tenants {
            push_histogram(
                &mut out,
                "cq_serve_tenant_latency_seconds",
                &format!("tenant=\"{}\",", escape_label(&t.name)),
                &t.histogram,
            );
        }

        push_metric_header(
            &mut out,
            "cq_serve_model_images_total",
            "counter",
            "Images swept per resident model.",
        );
        for m in &self.models {
            out.push_str(&format!(
                "cq_serve_model_images_total{{model=\"{}\",scheme=\"{}\",evicted=\"{}\"}} {}\n",
                escape_label(&m.name),
                escape_label(&m.scheme),
                m.evicted,
                m.images
            ));
        }

        push_metric_header(
            &mut out,
            "cq_serve_scheme_images_total",
            "counter",
            "Images swept per quantization scheme.",
        );
        for (scheme, images) in self.images_by_scheme() {
            out.push_str(&format!(
                "cq_serve_scheme_images_total{{scheme=\"{}\"}} {images}\n",
                escape_label(&scheme),
            ));
        }

        push_metric_header(
            &mut out,
            "cq_serve_backend_sweeps_total",
            "counter",
            "Sweeps per execution backend.",
        );
        for (i, b) in self.backends.iter().enumerate() {
            out.push_str(&format!(
                "cq_serve_backend_sweeps_total{{backend=\"{}\"}} {}\n",
                cq_core::BackendKind::ALL[i].name(),
                b.sweeps
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_and_quantiles_upper_bound() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(3)); // bucket 1: [2,4)
        h.record(Duration::from_micros(1000)); // bucket 9: [512,1024)
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[9], 1);
        // p50 rank 2 → bucket 0 upper bound 2µs.
        assert_eq!(h.quantile(0.5), Some(Duration::from_micros(2)));
        // p100 → bucket 9 upper bound 1024µs.
        assert_eq!(h.quantile(1.0), Some(Duration::from_micros(1024)));
        assert_eq!(h.sum(), Duration::from_micros(1004));
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(5));
        b.record(Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[2], 2, "two 5µs observations in [4,8)");
    }

    #[test]
    fn histogram_clamps_huge_latencies_into_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert!(h.quantile(0.99).is_some());
    }

    #[test]
    fn depth_series_decimates_but_keeps_coverage() {
        let mut s = DepthSeries::default();
        for i in 0..5000u64 {
            s.record(Duration::from_millis(i), (i % 7) as usize);
        }
        let samples = s.snapshot();
        assert!(samples.len() < 512, "bounded after decimation");
        assert!(samples.len() >= 128, "still a useful series");
        assert!(
            samples.windows(2).all(|w| w[0].at <= w[1].at),
            "monotone time"
        );
        // Coverage reaches near the end of the run.
        assert!(samples.last().unwrap().at >= Duration::from_millis(4000));
    }
}
