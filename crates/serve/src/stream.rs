//! Seeded open-loop request-stream generation.
//!
//! The SLO benchmark replays Poisson-ish request streams against the
//! server: exponential inter-arrival gaps at a configured mean rate, with
//! the target model and per-request batch size drawn uniformly — all from
//! one seeded [`CqRng`], so a stream is exactly reproducible. Each
//! [`StreamRequest`] maps onto one [`Request`](crate::Request) builder
//! call at replay time (`Request::to_id(ids[r.model]).batch(input)
//! .slo(r.slo)`), and the replay loop multiplexes the resulting tickets
//! through a [`CompletionSet`](crate::CompletionSet).

use crate::Slo;
use cq_tensor::CqRng;
use std::time::Duration;

/// One request of a generated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRequest {
    /// Arrival offset from the stream start.
    pub at: Duration,
    /// Index of the target model (in `0..models`).
    pub model: usize,
    /// Images in this request.
    pub batch: usize,
    /// Priority class of this request.
    pub slo: Slo,
    /// Index into [`StreamSpec::tenants`] when the spec names tenants;
    /// `None` (the built-in `"default"` tenant) otherwise.
    pub tenant: Option<usize>,
}

/// Specification of a Poisson-ish open-loop stream.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Mean arrival rate, requests per second.
    pub rate_rps: f64,
    /// Total number of requests.
    pub requests: usize,
    /// Number of models to spread requests over (uniformly).
    pub models: usize,
    /// Batch sizes drawn uniformly per request.
    pub batch_choices: Vec<usize>,
    /// Fraction of requests drawn as [`Slo::Latency`] (`0.0` = pure bulk,
    /// the PR 3 FIFO-equivalent workload).
    pub latency_fraction: f64,
    /// RNG seed — same seed, same stream.
    pub seed: u64,
    /// Tenant names to spread requests over (uniformly). Empty means
    /// every request rides the built-in `"default"` tenant.
    pub tenants: Vec<String>,
}

impl StreamSpec {
    /// Generates the stream.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps <= 0`, `models == 0`, `batch_choices` is
    /// empty, or `latency_fraction` is outside `0.0..=1.0`.
    pub fn generate(&self) -> Vec<StreamRequest> {
        assert!(self.rate_rps > 0.0, "arrival rate must be positive");
        assert!(self.models > 0, "need at least one model");
        assert!(!self.batch_choices.is_empty(), "need batch choices");
        assert!(
            (0.0..=1.0).contains(&self.latency_fraction),
            "latency_fraction must be in 0..=1"
        );
        let mut rng = CqRng::new(self.seed);
        let mut t = 0.0f64;
        (0..self.requests)
            .map(|_| {
                // Exponential gap: -ln(1-U)/λ; U ∈ [0,1) keeps the log finite.
                let u = rng.uniform() as f64;
                t += -(1.0 - u).ln() / self.rate_rps;
                StreamRequest {
                    at: Duration::from_secs_f64(t),
                    model: rng.below(self.models),
                    batch: self.batch_choices[rng.below(self.batch_choices.len())],
                    slo: if (rng.uniform() as f64) < self.latency_fraction {
                        Slo::Latency
                    } else {
                        Slo::Bulk
                    },
                    tenant: if self.tenants.is_empty() {
                        None
                    } else {
                        Some(rng.below(self.tenants.len()))
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> StreamSpec {
        StreamSpec {
            rate_rps: 100.0,
            requests: 500,
            models: 3,
            batch_choices: vec![1, 2, 4],
            latency_fraction: 0.25,
            seed,
            tenants: vec![],
        }
    }

    #[test]
    fn tenants_are_drawn_only_when_named() {
        let s = spec(11).generate();
        assert!(s.iter().all(|r| r.tenant.is_none()), "default tenant");
        let named = StreamSpec {
            tenants: vec!["a".into(), "b".into()],
            ..spec(11)
        }
        .generate();
        assert!(named.iter().all(|r| matches!(r.tenant, Some(0 | 1))));
        assert!(named.iter().any(|r| r.tenant == Some(0)));
        assert!(named.iter().any(|r| r.tenant == Some(1)));
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        assert_eq!(spec(7).generate(), spec(7).generate());
        assert_ne!(spec(7).generate(), spec(8).generate());
    }

    #[test]
    fn arrivals_are_monotone_at_roughly_the_rate() {
        let s = spec(42).generate();
        assert!(
            s.windows(2).all(|w| w[0].at <= w[1].at),
            "monotone arrivals"
        );
        // 500 arrivals at 100 rps should take ~5 s; Poisson spread is wide
        // but not *that* wide.
        let span = s.last().unwrap().at.as_secs_f64();
        assert!((3.0..8.0).contains(&span), "span {span}");
        assert!(s.iter().all(|r| r.model < 3));
        assert!(s.iter().all(|r| [1, 2, 4].contains(&r.batch)));
    }

    #[test]
    fn latency_fraction_controls_the_class_mix() {
        let latency = |f: f64| {
            StreamSpec {
                latency_fraction: f,
                ..spec(9)
            }
            .generate()
            .iter()
            .filter(|r| r.slo == Slo::Latency)
            .count()
        };
        assert_eq!(latency(0.0), 0, "pure bulk stream");
        assert_eq!(latency(1.0), 500, "pure latency stream");
        let mixed = latency(0.25);
        assert!((75..=175).contains(&mixed), "~25% latency, got {mixed}");
    }
}
