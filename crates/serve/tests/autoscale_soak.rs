//! Autoscaler soak: a sustained burst grows the pool to `max_workers`,
//! sustained idleness shrinks it back to `min_workers`, and resizes are
//! invisible to correctness — no ticket is lost across grow/shrink, FIFO
//! order survives a shrink back to one worker, and the kernel exec pool
//! never respawns OS threads (`exec::os_threads_spawned` stays flat:
//! session workers are owned threads, resized by retire/spawn of
//! *serving* threads only, and those come from the session pool, not the
//! kernel pool).

use cq_cim::CimConfig;
use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode, ResNetSpec};
use cq_serve::{Admission, CimServer, CompletionSet, ModelRegistry, Request, ServeConfig, Slo};
use cq_tensor::{exec, CqRng, Tensor};
use std::time::{Duration, Instant};

fn prepared(seed: u64) -> PreparedCimModel {
    let mut net = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        seed,
    );
    let x = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&x, Mode::Eval);
    PreparedCimModel::new(Box::new(net))
}

fn input(rng: &mut CqRng, batch: usize) -> Tensor {
    rng.normal_tensor(&[batch, 3, 12, 12], 1.0)
}

/// Polls `probe` until it returns true or `bound` elapses.
fn eventually(bound: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + bound;
    loop {
        if probe() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn pool_grows_under_burst_shrinks_when_idle_and_loses_nothing() {
    const MIN: usize = 1;
    const MAX: usize = 3;
    let spawned_before = exec::os_threads_spawned();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(400));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(64)
            .admission(Admission::Block)
            .max_batch(Some(1)) // one request per sweep: depth stays visible
            .max_wait(Duration::ZERO)
            .autoscale(MIN, MAX)
            .scale_up_after(Duration::from_millis(1))
            .scale_down_idle(Duration::from_millis(20))
            .build()
            .unwrap(),
    )
    .start();
    assert_eq!(session.live_workers(), MIN, "pool starts at the floor");

    // Phase 1 — burst. Keep the queue deeper than the live worker count
    // long enough for the sustain filter, and hold every ticket.
    let rng = &mut CqRng::new(401);
    let mut inflight = CompletionSet::new();
    let mut submitted = 0usize;
    let grew = eventually(Duration::from_secs(30), || {
        for _ in 0..8 {
            inflight.insert(
                session
                    .submit(Request::to("m").batch(input(rng, 2)).slo(Slo::Bulk))
                    .unwrap(),
            );
            submitted += 1;
        }
        session.live_workers() == MAX
    });
    assert!(grew, "sustained burst must grow the pool to max_workers");

    // No lost tickets across the grows: everything submitted resolves.
    let mut completed = 0usize;
    while inflight.wait_any().is_some() {
        completed += 1;
    }
    assert_eq!(completed, submitted, "no ticket lost across scale-ups");

    // Phase 2 — sustained idle. Surplus workers retire down to the floor.
    let shrank = eventually(Duration::from_secs(30), || session.live_workers() == MIN);
    assert!(shrank, "sustained idle must shrink the pool to min_workers");

    // Phase 3 — FIFO order through the shrunk pool: one worker, bulk
    // class, one request per sweep ⇒ completion order is submission
    // order. A resize must never have reordered the queue.
    let mut order = CompletionSet::new();
    for _ in 0..10 {
        order.insert(
            session
                .submit(Request::to("m").batch(input(rng, 1)).slo(Slo::Bulk))
                .unwrap(),
        );
    }
    let mut got = Vec::new();
    while let Some((key, _)) = order.wait_any() {
        got.push(key.index());
    }
    assert_eq!(
        got,
        (0..10).collect::<Vec<_>>(),
        "single-worker completion order must match submission order"
    );

    let (stats, _) = session.shutdown();
    assert_eq!(stats.served, submitted as u64 + 10);
    assert_eq!(stats.workers.min, MIN);
    assert_eq!(stats.workers.max, MAX);
    assert_eq!(stats.workers.peak, MAX, "burst reached the ceiling");
    assert!(
        stats.workers.resizes >= ((MAX - MIN) * 2) as u64,
        "at least one full grow+shrink cycle recorded, got {}",
        stats.workers.resizes
    );
    assert!(
        stats.workers.spawned >= MAX as u64,
        "grows spawn real workers"
    );
    assert_eq!(
        exec::os_threads_spawned(),
        spawned_before,
        "kernel exec pool must not respawn OS threads across resizes"
    );
}

/// A fixed pool (`workers(n)`, i.e. `min == max`) never resizes and
/// never idles out — the PR 7 behaviour is the degenerate case.
#[test]
fn fixed_pool_never_resizes() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(410));
    let session =
        CimServer::new(registry, ServeConfig::builder().workers(2).build().unwrap()).start();
    assert_eq!(session.live_workers(), 2);
    // Long enough that a (buggy) idle-retirement path would fire.
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(session.live_workers(), 2, "fixed pools must not idle out");
    let rng = &mut CqRng::new(411);
    let t = session
        .submit(Request::to("m").batch(input(rng, 1)))
        .unwrap();
    let _ = t.wait();
    let (stats, _) = session.shutdown();
    assert_eq!(stats.workers.resizes, 0);
    assert_eq!(stats.workers.peak, 2);
    assert_eq!(stats.workers.spawned, 2);
}

/// Scale-down races shutdown cleanly: an autoscaling session that is
/// mid-shrink when `shutdown` lands still joins every thread and
/// resolves every ticket.
#[test]
fn shutdown_during_scale_transitions_is_clean() {
    for trial in 0..4u64 {
        let mut registry = ModelRegistry::new();
        registry.register("m", prepared(420 + trial));
        let session = CimServer::new(
            registry,
            ServeConfig::builder()
                .queue_capacity(32)
                .autoscale(1, 3)
                .scale_up_after(Duration::from_millis(1))
                .scale_down_idle(Duration::from_millis(3))
                .max_batch(Some(1))
                .max_wait(Duration::ZERO)
                .build()
                .unwrap(),
        )
        .start();
        let rng = &mut CqRng::new(430 + trial);
        let tickets: Vec<_> = (0..12)
            .map(|_| {
                session
                    .submit(Request::to("m").batch(input(rng, 1)))
                    .unwrap()
            })
            .collect();
        // Vary how deep into the burst the shutdown lands.
        std::thread::sleep(Duration::from_millis(trial * 4));
        let (stats, models) = session.shutdown();
        assert_eq!(stats.served, 12, "shutdown drains everything admitted");
        assert_eq!(models.len(), 1);
        for t in tickets {
            let _ = t.wait(); // already resolved; must not hang or panic
        }
    }
}
