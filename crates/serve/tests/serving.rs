//! Serving-layer integration tests: admission control, multi-model
//! isolation, deterministic scheduling under a seeded stream, the owned
//! session lifecycle, and bit-exactness of every serving path against
//! the direct `PreparedCimModel::infer` result.

use cq_cim::CimConfig;
use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode, ResNet, ResNetSpec};
use cq_serve::{
    Admission, CimServer, ConfigError, ModelRegistry, Request, ServeConfig, Slo, StreamSpec,
    SubmitError, Ticket,
};
use cq_tensor::{CqRng, Tensor};
use std::time::Duration;

/// A small CIM ResNet with all lazy scales initialized. Construction is
/// deterministic per seed, so two calls yield bit-identical models.
fn warmed_net(seed: u64) -> ResNet {
    let mut net = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        seed,
    );
    let x = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&x, Mode::Eval);
    net
}

fn prepared(seed: u64) -> PreparedCimModel {
    PreparedCimModel::new(Box::new(warmed_net(seed)))
}

fn request(rng: &mut CqRng, batch: usize) -> Tensor {
    rng.normal_tensor(&[batch, 3, 12, 12], 1.0)
}

/// Block admission admits everything; all outputs are bit-identical to
/// the direct standalone path, including oversized (chunked) requests.
#[test]
fn queued_serving_is_bit_exact_vs_direct() {
    let mut reference = warmed_net(1);
    let rng = &mut CqRng::new(2);
    // Mixed batch sizes; 7 exceeds max_batch=3 and must be chunked.
    let inputs: Vec<Tensor> = [1usize, 2, 7, 1, 3, 1, 5]
        .iter()
        .map(|&b| request(rng, b))
        .collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| reference.forward(x, Mode::Eval))
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(1));
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(4)
            .admission(Admission::Block)
            .max_batch(Some(3))
            .max_wait(Duration::from_millis(1))
            .workers(2)
            .build()
            .unwrap(),
    );
    let (got, stats) = server.serve(|s| {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| s.submit(Request::to("m").batch(x.clone())).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().output)
            .collect::<Vec<_>>()
    });
    assert_eq!(got, want, "queued path diverged from direct inference");
    assert_eq!(stats.submitted, 7);
    assert_eq!(stats.served, 7);
    assert_eq!(stats.rejected, 0, "Block admission never rejects");
    assert_eq!(stats.rows_swept, 20);
}

/// The owned-session flow: `start` detaches the server into a session,
/// tickets resolve through pollable paths while the session runs, and
/// `shutdown` resolves every outstanding ticket, returns exact stats,
/// and hands the resident models back (still frozen and usable).
#[test]
fn owned_session_start_shutdown_roundtrip() {
    let mut reference = warmed_net(5);
    let rng = &mut CqRng::new(6);
    let inputs: Vec<Tensor> = (0..6).map(|_| request(rng, 1)).collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| reference.forward(x, Mode::Eval))
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(5));
    let cfg = ServeConfig::builder()
        .max_batch(Some(2))
        .workers(2)
        .build()
        .unwrap();
    let session = CimServer::new(registry, cfg.clone()).start();
    let tickets: Vec<Ticket> = inputs
        .iter()
        .map(|x| s_submit(&session, x))
        .collect::<Vec<_>>();
    // Shut down with every ticket still outstanding: shutdown must
    // resolve all of them (drain-then-join), and the tickets stay
    // waitable afterwards.
    let (stats, models) = session.shutdown();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.served, 6, "shutdown drains every admitted request");
    let got: Vec<Tensor> = tickets.into_iter().map(|t| t.wait().output).collect();
    assert_eq!(got, want, "post-shutdown resolution diverged");

    // The models come back by name and still serve directly.
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].0, "m");
    let registry = ModelRegistry::from_models(models);
    let (direct, stats2) = CimServer::new(registry, cfg).serve(|s| {
        s.submit(Request::to("m").batch(inputs[0].clone()))
            .unwrap()
            .wait()
            .output
    });
    assert_eq!(direct, want[0], "returned model diverged after round-trip");
    assert_eq!(stats2.served, 1);

    fn s_submit(session: &cq_serve::ServeSession, x: &Tensor) -> Ticket {
        session.submit(Request::to("m").batch(x.clone())).unwrap()
    }
}

/// Many concurrent clients hammering one owned session: every ticket
/// resolves bit-exactly against the direct path, accounting is exact,
/// and — once the executor pool is warm — serving spawns **zero** OS
/// threads, no matter how many clients and sweeps run.
#[test]
fn many_client_hammer_is_bit_exact_with_zero_spawns() {
    let mut reference = warmed_net(21);
    let rng = &mut CqRng::new(22);
    let (n_clients, per_client) = (8usize, 6usize);
    let inputs: Vec<Vec<Tensor>> = (0..n_clients)
        .map(|c| {
            (0..per_client)
                .map(|i| request(rng, 1 + (c + i) % 3))
                .collect()
        })
        .collect();
    let want: Vec<Vec<Tensor>> = inputs
        .iter()
        .map(|client| {
            client
                .iter()
                .map(|x| reference.forward(x, Mode::Eval))
                .collect()
        })
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(21));
    let cfg = ServeConfig::builder()
        .admission(Admission::Block)
        .max_batch(Some(4))
        .max_wait(Duration::from_millis(1))
        .workers(3)
        .build()
        .unwrap();
    let session = CimServer::new(registry, cfg).start();
    // Warm-up: first sweep lazily creates the global executor pool (and
    // any lazy serve state); everything after must spawn nothing.
    let warm = session
        .submit(Request::to("m").batch(inputs[0][0].clone()))
        .unwrap();
    assert_eq!(warm.wait().output, want[0][0]);
    let spawned_before = cq_tensor::exec::os_threads_spawned();

    let got: Vec<Vec<Tensor>> = std::thread::scope(|sc| {
        let session = &session;
        let handles: Vec<_> = inputs
            .iter()
            .map(|client| {
                sc.spawn(move || {
                    client
                        .iter()
                        .map(|x| {
                            session
                                .submit(Request::to("m").batch(x.clone()))
                                .unwrap()
                                .wait()
                                .output
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(got, want, "hammered session diverged from direct path");
    assert_eq!(
        cq_tensor::exec::os_threads_spawned(),
        spawned_before,
        "steady-state serving must not spawn OS threads"
    );
    let (stats, _) = session.shutdown();
    assert_eq!(stats.submitted as usize, n_clients * per_client + 1);
    assert_eq!(stats.served as usize, n_clients * per_client + 1);
}

/// Live stats scrapes run concurrently with serving: `session.stats()`,
/// `render_prometheus`, and the registry's `&self` backend accessors
/// (`primary_backends`, `backend_layer_counts`) never block on or
/// corrupt the serving path, and the monotone counters only grow.
#[test]
fn stats_scrape_runs_concurrently_with_serving() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(33));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .admission(Admission::Block)
            .max_batch(Some(2))
            .max_wait(Duration::from_micros(200))
            .workers(2)
            .build()
            .unwrap(),
    )
    .start();

    let served = std::thread::scope(|sc| {
        let session = &session;
        let submitter = sc.spawn(move || {
            let rng = &mut CqRng::new(34);
            let tickets: Vec<Ticket> = (0..30)
                .map(|_| {
                    session
                        .submit(Request::to("m").batch(request(rng, 1)))
                        .unwrap()
                })
                .collect();
            let mut served = 0usize;
            for t in tickets {
                let _ = t.wait();
                served += 1;
            }
            served
        });
        let scraper = sc.spawn(move || {
            let mut last_served = 0u64;
            for _ in 0..200 {
                let stats = session.stats();
                assert!(stats.served >= last_served, "served count went backwards");
                last_served = stats.served;
                assert!(stats.served <= stats.submitted);
                // The registry accessors take &self — no exclusive lock,
                // so they are scrapeable mid-flight too.
                assert_eq!(session.registry().primary_backends().len(), 1);
                let _layers: [usize; 3] = session.registry().backend_layer_counts();
                let text = stats.render_prometheus();
                assert!(text.contains("cq_serve_served_total"));
                assert!(text.contains("cq_serve_workers{dim=\"live\"}"));
            }
            last_served
        });
        let served = submitter.join().unwrap();
        let _ = scraper.join().unwrap();
        served
    });
    assert_eq!(served, 30);
    let (stats, _) = session.shutdown();
    assert_eq!(stats.served, 30);
    assert_eq!(stats.models.len(), 1);
    assert_eq!(stats.models[0].name, "m");
    assert!(!stats.models[0].evicted);
    assert_eq!(stats.models[0].served, 30);
    assert!(!stats.tenants.is_empty(), "default tenant tracked");
    assert_eq!(stats.tenants[0].name, "default");
    assert_eq!(
        stats.latency_hist.count() + stats.bulk_hist.count(),
        30,
        "every fulfilment lands in a class histogram"
    );
    assert!(
        !stats.queue_depth_series.is_empty(),
        "admissions produce depth samples"
    );
}

/// `set_config` is a hard error while unreachable mid-session (the
/// sessions-only contract), rejects invalid configs loudly, and applies
/// cleanly between sessions.
#[test]
fn set_config_validates_and_is_sessions_only() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(8));
    let mut server = CimServer::new(registry, ServeConfig::default());
    // The builder refuses invalid configs; construct the invalid value
    // directly (fields are public precisely so tests can) to exercise
    // `set_config`'s own validation path.
    let invalid = ServeConfig {
        min_workers: 0,
        ..ServeConfig::default()
    };
    assert_eq!(
        server.set_config(invalid),
        Err(ConfigError::ZeroWorkers),
        "invalid config must be rejected, not asserted"
    );
    let inverted = ServeConfig {
        min_workers: 3,
        max_workers: 1,
        ..ServeConfig::default()
    };
    assert_eq!(
        server.set_config(inverted),
        Err(ConfigError::WorkerBounds { min: 3, max: 1 }),
        "inverted autoscale bounds must be rejected"
    );
    // Between sessions, reconfiguration succeeds and the policy sticks.
    let cfg = ServeConfig::builder().workers(3).build().unwrap();
    server.set_config(cfg).unwrap();
    assert_eq!(server.config().min_workers, 3);
    assert_eq!(server.config().max_workers, 3, "workers(n) fixes the pool");
    let ((), stats) = server.serve(|_s| {});
    assert_eq!(stats.submitted, 0);
    // Still reconfigurable after a session drained.
    server
        .set_config(ServeConfig::builder().workers(1).build().unwrap())
        .unwrap();
    assert_eq!(server.config().min_workers, 1);
}

/// Reject admission bounds the queue: some of a fast burst is shed, the
/// accounting is exact, and every admitted request completes correctly.
#[test]
fn reject_admission_sheds_load_with_exact_accounting() {
    let mut reference = warmed_net(3);
    let rng = &mut CqRng::new(4);
    let inputs: Vec<Tensor> = (0..48).map(|_| request(rng, 1)).collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| reference.forward(x, Mode::Eval))
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(3));
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(2)
            .admission(Admission::Reject)
            .max_batch(Some(2))
            .max_wait(Duration::ZERO)
            .workers(1)
            .build()
            .unwrap(),
    );
    let (results, stats) = server.serve(|s| {
        // Submit the whole burst first (the worker needs milliseconds per
        // sweep; submission takes microseconds, so the tiny queue must
        // overflow), then wait the admitted tickets.
        let tickets: Vec<Result<Ticket, SubmitError>> = inputs
            .iter()
            .map(|x| s.submit(Request::to("m").batch(x.clone())))
            .collect();
        tickets
            .into_iter()
            .map(|r| r.map(Ticket::wait))
            .collect::<Vec<_>>()
    });
    let mut admitted = 0u64;
    let mut shed = 0u64;
    for (r, want) in results.into_iter().zip(&want) {
        match r {
            Ok(completed) => {
                admitted += 1;
                assert_eq!(&completed.output, want, "admitted output diverged");
            }
            Err(SubmitError::QueueFull(given_back)) => {
                shed += 1;
                assert_eq!(given_back.rank(), 4, "rejected input handed back");
            }
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }
    assert_eq!(stats.submitted, admitted);
    assert_eq!(stats.rejected, shed);
    assert_eq!(admitted + shed, 48);
    assert!(shed > 0, "a 48-request burst into a 2-slot queue must shed");
    assert_eq!(stats.served, admitted, "every admitted request was served");
    assert!(stats.peak_queue_depth <= 2, "capacity bound violated");
}

/// Two resident models must be fully isolated: each request's output is
/// bit-identical to its own standalone `PreparedCimModel`, regardless of
/// interleaving.
#[test]
fn multi_model_residency_is_isolated_and_bit_exact() {
    let mut ref_a = warmed_net(10);
    let mut ref_b = warmed_net(20);
    let stream = StreamSpec {
        rate_rps: 1e6, // arrivals effectively back-to-back
        requests: 24,
        models: 2,
        batch_choices: vec![1, 2, 5],
        latency_fraction: 0.0,
        seed: 99,
        tenants: vec![],
    }
    .generate();
    let rng = &mut CqRng::new(5);
    let inputs: Vec<(usize, Tensor)> = stream
        .iter()
        .map(|r| (r.model, request(rng, r.batch)))
        .collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|(m, x)| {
            if *m == 0 {
                ref_a.forward(x, Mode::Eval)
            } else {
                ref_b.forward(x, Mode::Eval)
            }
        })
        .collect();

    let mut registry = ModelRegistry::new();
    let id_a = registry.register("model-a", prepared(10));
    let id_b = registry.register("model-b", prepared(20));
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(32)
            .admission(Admission::Block)
            .max_batch(Some(4))
            .max_wait(Duration::from_millis(1))
            .workers(3)
            .build()
            .unwrap(),
    );
    let (got, stats) = server.serve(|s| {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|(m, x)| {
                let id = if *m == 0 { id_a } else { id_b };
                s.submit(Request::to_id(id).batch(x.clone())).unwrap()
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().output)
            .collect::<Vec<_>>()
    });
    assert_eq!(got, want, "multi-model outputs diverged from standalone");
    assert_eq!(stats.served, 24);
}

/// With one worker and a generous linger, batch formation over a seeded
/// pre-submitted stream is deterministic: identical stats across runs,
/// and the scheduler coalesces up to the cap.
#[test]
fn scheduler_is_deterministic_under_a_seeded_stream() {
    let stream = StreamSpec {
        rate_rps: 1e6,
        requests: 16,
        models: 1,
        batch_choices: vec![1],
        latency_fraction: 0.0,
        seed: 7,
        tenants: vec![],
    }
    .generate();

    let run = || {
        let rng = &mut CqRng::new(6);
        let inputs: Vec<Tensor> = stream.iter().map(|r| request(rng, r.batch)).collect();
        let mut registry = ModelRegistry::new();
        registry.register("m", prepared(30));
        let server = CimServer::new(
            registry,
            ServeConfig::builder()
                .queue_capacity(32)
                .admission(Admission::Block)
                .max_batch(Some(4))
                .max_wait(Duration::from_secs(2))
                .workers(1)
                .build()
                .unwrap(),
        );
        server.serve(|s| {
            // Pre-submit the whole stream, then wait: the single worker's
            // scheduler always finds a full queue (or lingers far longer
            // than the submission loop takes), so sweeps fill to the cap.
            let tickets: Vec<Ticket> = inputs
                .iter()
                .map(|x| s.submit(Request::to("m").batch(x.clone())).unwrap())
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().output)
                .collect::<Vec<_>>()
        })
    };
    let (out1, stats1) = run();
    let (out2, stats2) = run();
    assert_eq!(out1, out2, "outputs must be identical across runs");
    assert_eq!(stats1.batches, stats2.batches, "batch count diverged");
    assert_eq!(stats1.rows_swept, 16);
    assert_eq!(stats1.batches, 4, "16 single-image requests at cap 4");
    assert_eq!(stats1.max_sweep_rows, 4);
}

/// A request whose shape the model rejects must make `serve` panic —
/// worker panics propagate through abandoned tickets and the close-on-
/// unwind guard — never deadlock.
#[test]
#[should_panic]
fn model_rejecting_an_input_panics_instead_of_hanging() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(50));
    let server = CimServer::new(registry, ServeConfig::builder().workers(1).build().unwrap());
    let ((), _) = server.serve(|s| {
        // Wrong channel count: the model's first conv rejects it.
        let bad = Tensor::zeros(&[1, 5, 12, 12]);
        let t = s.submit(Request::to("m").batch(bad)).unwrap();
        let _ = t.wait(); // panics: the worker abandoned the ticket
    });
}

/// Unknown models and batch-less requests fail recoverably at
/// submission — no panic, the session stays usable.
#[test]
fn unknown_model_and_missing_input_are_rejected_at_submit() {
    let mut registry = ModelRegistry::new();
    registry.register("only", prepared(40));
    let server = CimServer::new(registry, ServeConfig::default());
    let ((unknown, missing, served), _) = server.serve(|s| {
        let unknown = s
            .submit(Request::to("missing").batch(Tensor::zeros(&[1, 3, 12, 12])))
            .err()
            .unwrap();
        let missing = s.submit(Request::to("only")).err().unwrap();
        // The session survives both rejections.
        let served = s
            .submit(Request::to("only").batch(Tensor::zeros(&[1, 3, 12, 12])))
            .unwrap()
            .wait();
        (unknown, missing, served)
    });
    assert!(matches!(unknown, SubmitError::UnknownModel(name) if name == "missing"));
    assert!(matches!(missing, SubmitError::MissingInput));
    assert_eq!(served.output.dim(0), 1);
}

/// Session ergonomics: `model_id` resolves names for `Request::to_id`
/// hot paths, a ticket resolved before shutdown stays valid, and a
/// session dropped without `shutdown` (client bailed out) neither leaks
/// worker threads nor hangs.
#[test]
fn session_model_ids_and_drop_without_shutdown() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(45));
    let session = CimServer::new(registry, ServeConfig::default()).start();
    assert!(session.model_id("missing").is_none());
    let id = session.model_id("m").unwrap();
    let warm = session
        .submit(Request::to_id(id).batch(Tensor::zeros(&[1, 3, 12, 12])))
        .unwrap();
    let (stats, models) = session.shutdown();
    assert_eq!(stats.served, 1);
    assert!(!warm.wait().missed);
    // A fresh session over the returned models works; dropping it without
    // shutdown must close the queue and join the workers.
    let session =
        CimServer::new(ModelRegistry::from_models(models), ServeConfig::default()).start();
    drop(session);
}

/// Batch-segment sharding across the worker pool (plus row-tile sharding
/// inside every frozen conv) must leave every output bit-identical to the
/// direct standalone path — sharding changes scheduling only.
#[test]
fn sharded_serving_is_bit_exact_vs_direct() {
    let mut reference = warmed_net(60);
    let rng = &mut CqRng::new(61);
    // 9- and 7-row requests exceed shard_rows=2 and are split into ≤2-row
    // segments executed cooperatively; singles ride normal sweeps.
    let inputs: Vec<Tensor> = [9usize, 1, 7, 2, 1]
        .iter()
        .map(|&b| request(rng, b))
        .collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| reference.forward(x, Mode::Eval))
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(60));
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(16)
            .admission(Admission::Block)
            .max_batch(Some(4))
            .max_wait(Duration::from_millis(1))
            .workers(3)
            .shard_rows(Some(2))
            .row_tile_shards(Some(2))
            .build()
            .unwrap(),
    );
    let (got, stats) = server.serve(|s| {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| s.submit(Request::to("m").batch(x.clone())).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().output)
            .collect::<Vec<_>>()
    });
    assert_eq!(got, want, "sharded serving diverged from direct inference");
    assert_eq!(stats.served, 5);
    assert!(
        stats.sharded_sweeps >= 2,
        "both oversized requests must shard, got {}",
        stats.sharded_sweeps
    );
    // 9 rows -> 5 segments, 7 rows -> 4 segments (≤ 2 rows each).
    assert!(
        stats.shards_executed >= 9,
        "expected ≥9 shard executions, got {}",
        stats.shards_executed
    );
}

/// One-worker sharding must not deadlock: the coordinator drains its own
/// shard tasks from the pool while it waits for the join.
#[test]
fn single_worker_sharding_drains_its_own_pool() {
    let mut reference = warmed_net(62);
    let big = CqRng::new(63).normal_tensor(&[6, 3, 12, 12], 1.0);
    let want = reference.forward(&big, Mode::Eval);
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(62));
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .workers(1)
            .shard_rows(Some(2))
            .build()
            .unwrap(),
    );
    let (got, stats) = server.serve(|s| {
        s.submit(Request::to("m").batch(big.clone()))
            .unwrap()
            .wait()
            .output
    });
    assert_eq!(got, want);
    assert_eq!(stats.sharded_sweeps, 1);
    assert_eq!(stats.shards_executed, 3);
}

/// The stream-class distribution helper still drives the replay loop —
/// a regression guard that `Slo` defaults survive the request builder.
#[test]
fn request_builder_defaults_to_bulk() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(65));
    let server = CimServer::new(registry, ServeConfig::default());
    let (slo, stats) = server.serve(|s| {
        let t = s
            .submit(Request::to("m").batch(Tensor::zeros(&[1, 3, 12, 12])))
            .unwrap();
        assert_eq!(t.slo(), Slo::Bulk, "builder default class");
        assert!(t.deadline().is_none(), "builder default deadline");
        t.wait().slo
    });
    assert_eq!(slo, Slo::Bulk);
    assert_eq!(stats.bulk.served, 1);
    assert_eq!(stats.latency.served, 0);
}
