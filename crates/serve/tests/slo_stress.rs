//! Deterministic concurrency test harness for the SLO-aware scheduler and
//! the work-stealing shard pool: seeded multi-producer stress (no
//! deadlock, no lost ticket), latency-over-stale-bulk completion
//! ordering, deadline `missed` stamping, and panic propagation out of
//! sharded workers (extending the close-on-unwind coverage from the FIFO
//! front-end).

use cq_cim::CimConfig;
use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode, ResNet, ResNetSpec};
use cq_serve::{Admission, CimServer, ModelRegistry, ServeConfig, Slo, Ticket};
use cq_tensor::{CqRng, Tensor};
use std::time::{Duration, Instant};

/// A small CIM ResNet with all lazy scales initialized (deterministic per
/// seed).
fn warmed_net(seed: u64) -> ResNet {
    let mut net = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        seed,
    );
    let x = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&x, Mode::Eval);
    net
}

fn prepared(seed: u64) -> PreparedCimModel {
    PreparedCimModel::new(Box::new(warmed_net(seed)))
}

fn request(rng: &mut CqRng, batch: usize) -> Tensor {
    rng.normal_tensor(&[batch, 3, 12, 12], 1.0)
}

/// Seeded-RNG stress: N producer threads submit mixed `Latency`/`Bulk`
/// tickets (varied batch sizes, some oversized and sharded) against two
/// resident models through a small queue. The serve scope must terminate
/// (no deadlock), resolve every ticket with a correctly-shaped output (no
/// lost ticket), and keep exact per-class accounting.
#[test]
fn mixed_slo_stress_no_deadlock_no_lost_tickets() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: usize = 12;

    let mut registry = ModelRegistry::new();
    let ids = [
        registry.register("model-a", prepared(70)),
        registry.register("model-b", prepared(71)),
    ];
    let server = CimServer::new(
        registry,
        ServeConfig {
            queue_capacity: 8, // small: producers must block on admission
            admission: Admission::Block,
            max_batch: Some(3),
            max_wait: Duration::from_micros(200),
            workers: 3,
            shard_rows: Some(2),
            row_tile_shards: Some(2),
        },
    );

    let (outcomes, stats) = server.serve(|h| {
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    sc.spawn(move || {
                        let mut rng = CqRng::new(7000 + p);
                        let mut in_flight = Vec::new();
                        for _ in 0..PER_PRODUCER {
                            let batch = [1, 1, 2, 5][rng.below(4)];
                            let slo = if rng.below(2) == 0 {
                                Slo::Latency
                            } else {
                                Slo::Bulk
                            };
                            let deadline = match slo {
                                Slo::Latency => Some(Duration::from_secs(30)),
                                Slo::Bulk => None,
                            };
                            let model = ids[rng.below(2)];
                            let x = request(&mut rng, batch);
                            // Submission blocks when the 8-slot queue is
                            // full — producers and workers exercise the
                            // admission/linger/steal interleavings hard.
                            in_flight
                                .push((batch, h.submit_to_with(model, x, slo, deadline).unwrap()));
                        }
                        in_flight
                            .into_iter()
                            .map(|(b, t)| (b, t.wait()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
    });

    let total = (PRODUCERS as usize * PER_PRODUCER) as u64;
    assert_eq!(outcomes.len() as u64, total, "every ticket resolved");
    for (batch, completed) in &outcomes {
        assert_eq!(
            completed.output.dim(0),
            *batch,
            "output batch dim matches the request"
        );
        if completed.slo == Slo::Bulk {
            assert!(!completed.missed, "deadline-free bulk cannot miss");
        }
    }
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.rejected, 0, "Block admission never rejects");
    assert_eq!(stats.served, total);
    assert_eq!(
        stats.latency.served + stats.bulk.served,
        total,
        "per-class served covers every request"
    );
    assert_eq!(
        stats.latency.submitted + stats.bulk.submitted,
        total,
        "per-class submitted covers every request"
    );
    assert_eq!(stats.bulk.missed, 0, "deadline-free bulk cannot miss");
    assert_eq!(stats.bulk.with_deadline, 0);
    assert_eq!(
        stats.latency.with_deadline, stats.latency.served,
        "every latency ticket carried a deadline"
    );
    assert!(stats.latency.missed <= stats.latency.served);
    assert!(
        stats.peak_queue_depth <= 8,
        "capacity bound violated under stress"
    );
    assert!(
        stats.sharded_sweeps > 0,
        "batch-5 requests over shard_rows=2 must shard"
    );
}

/// Priority ordering: with one worker pinned on a long bulk sweep, every
/// `Latency` ticket submitted afterwards completes before any `Bulk`
/// ticket that was submitted ≥ `max_wait` earlier than the latency batch
/// — the scheduler drains the whole latency class before returning to
/// queued bulk work.
#[test]
fn latency_completes_before_stale_bulk() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(80));
    let max_wait = Duration::from_millis(1);
    let server = CimServer::new(
        registry,
        ServeConfig {
            queue_capacity: 64,
            admission: Admission::Block,
            max_batch: Some(2),
            max_wait,
            workers: 1,
            shard_rows: None,
            row_tile_shards: None,
        },
    );

    let t0 = Instant::now();
    let ((latency_done, bulk_done), stats) = server.serve(|h| {
        let rng = &mut CqRng::new(81);
        // A long plug occupies the single worker (32 rows, chunked into
        // 16 internal sweeps) while everything else is submitted.
        let plug = h.submit("m", request(rng, 32)).unwrap();
        // Stale bulk backlog, submitted well over `max_wait` before the
        // latency tickets below.
        let bulk: Vec<(Duration, Ticket)> = (0..6)
            .map(|_| (t0.elapsed(), h.submit("m", request(rng, 1)).unwrap()))
            .collect();
        std::thread::sleep(3 * max_wait);
        let latency: Vec<(Duration, Ticket)> = (0..6)
            .map(|_| {
                let t = h
                    .submit_with("m", request(rng, 1), Slo::Latency, None)
                    .unwrap();
                (t0.elapsed(), t)
            })
            .collect();
        let finish = |v: Vec<(Duration, Ticket)>| {
            v.into_iter()
                .map(|(at, t)| at + t.wait().latency)
                .collect::<Vec<Duration>>()
        };
        let latency_done = finish(latency);
        let bulk_done = finish(bulk);
        let _ = plug.wait();
        (latency_done, bulk_done)
    });

    let last_latency = latency_done.iter().max().unwrap();
    let first_bulk = bulk_done.iter().min().unwrap();
    assert!(
        last_latency < first_bulk,
        "a latency ticket completed after a bulk ticket submitted \
         ≥ max_wait earlier: last latency at {last_latency:?}, first bulk \
         at {first_bulk:?}"
    );
    assert_eq!(stats.latency.served, 6);
    assert_eq!(stats.bulk.served, 7);
}

/// Deadline-expired tickets still complete — with bit-exact outputs — but
/// carry the `Missed` status, and the per-class stats count them.
#[test]
fn expired_deadlines_complete_with_missed_status() {
    let mut reference = warmed_net(90);
    let rng = &mut CqRng::new(91);
    let plug_input = request(rng, 24);
    let inputs: Vec<Tensor> = (0..4).map(|_| request(rng, 1)).collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| reference.forward(x, Mode::Eval))
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(90));
    let server = CimServer::new(
        registry,
        ServeConfig {
            queue_capacity: 64,
            admission: Admission::Block,
            max_batch: Some(2),
            max_wait: Duration::ZERO,
            workers: 1,
            shard_rows: None,
            row_tile_shards: None,
        },
    );
    let (outcomes, stats) = server.serve(|h| {
        // The plug guarantees the deadline below expires while queued.
        let plug = h.submit("m", plug_input.clone()).unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| {
                h.submit_with("m", x.clone(), Slo::Latency, Some(Duration::ZERO))
                    .unwrap()
            })
            .collect();
        let done: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        let _ = plug.wait();
        done
    });
    for (completed, want) in outcomes.iter().zip(&want) {
        assert!(completed.missed, "zero deadline behind a plug must miss");
        assert_eq!(completed.slo, Slo::Latency);
        assert_eq!(&completed.output, want, "missed ticket output diverged");
    }
    assert_eq!(stats.latency.missed, 4);
    assert_eq!(stats.latency.served, 4);

    // A generous deadline under the same load does not miss.
    let (completed, stats) = server.serve(|h| {
        h.submit_with(
            "m",
            inputs[0].clone(),
            Slo::Latency,
            Some(Duration::from_secs(600)),
        )
        .unwrap()
        .wait()
    });
    assert!(!completed.missed);
    assert_eq!(stats.latency.missed, 0);
}

/// A panicking shard executor must propagate: the failed join panics the
/// coordinating worker, which abandons its tickets, which panics the
/// waiting client — `serve` never deadlocks (the sharded extension of the
/// PR 3 close-on-unwind guarantee).
#[test]
#[should_panic]
fn panic_in_sharded_worker_propagates() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(95));
    let server = CimServer::new(
        registry,
        ServeConfig {
            workers: 2,
            shard_rows: Some(1),
            ..ServeConfig::default()
        },
    );
    let ((), _) = server.serve(|h| {
        // Wrong channel count on an oversized (sharded) request: every
        // shard executor's forward rejects it.
        let bad = Tensor::zeros(&[5, 5, 12, 12]);
        let t = h.submit("m", bad).unwrap();
        let _ = t.wait(); // panics: the coordinator abandoned the ticket
    });
}
