//! Deterministic concurrency test harness for the SLO-aware scheduler,
//! the work-stealing shard pool, and the pollable completion handles:
//! seeded multi-producer stress over mixed `try_wait`/`wait_timeout`/
//! `wait_any` spin+block resolution (no deadlock, no lost wakeup, no
//! lost ticket), bit-exactness of every resolution path across the
//! psq/granularity/digitizer matrix, the aging starvation bound under a
//! sustained latency flood, latency-over-stale-bulk completion ordering,
//! deadline `missed` stamping, and panic propagation out of sharded
//! workers.

use cq_cim::CimConfig;
use cq_core::{
    build_cim_resnet, CimConv2d, PreparedCimModel, QuantScheme, VariationCfg, VariationMode,
};
use cq_nn::{Layer, Mode, ResNet, ResNetSpec};
use cq_quant::Granularity;
use cq_serve::{
    Admission, CimServer, CompletionSet, ModelRegistry, Request, ServeConfig, Slo, Ticket,
};
use cq_tensor::{CqRng, Tensor};
use std::time::{Duration, Instant};

/// A small CIM ResNet with all lazy scales initialized (deterministic per
/// seed).
fn warmed_net(seed: u64) -> ResNet {
    let mut net = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        seed,
    );
    let x = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&x, Mode::Eval);
    net
}

fn prepared(seed: u64) -> PreparedCimModel {
    PreparedCimModel::new(Box::new(warmed_net(seed)))
}

fn request(rng: &mut CqRng, batch: usize) -> Tensor {
    rng.normal_tensor(&[batch, 3, 12, 12], 1.0)
}

/// Seeded-RNG stress: N producer threads submit mixed `Latency`/`Bulk`
/// tickets (varied batch sizes, some oversized and sharded) against two
/// resident models through a small queue — and each producer resolves its
/// tickets through a **different mix** of completion paths (blocking
/// `wait`, `try_wait` spin, `wait_timeout` loop, `CompletionSet`
/// multiplexing). The owned session must terminate (no deadlock), resolve
/// every ticket with a correctly-shaped output (no lost wakeup, no lost
/// ticket), and keep exact per-class accounting.
#[test]
fn mixed_slo_stress_no_deadlock_no_lost_tickets() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: usize = 12;

    let mut registry = ModelRegistry::new();
    let ids = [
        registry.register("model-a", prepared(70)),
        registry.register("model-b", prepared(71)),
    ];
    let cfg = ServeConfig::builder()
        .queue_capacity(8) // small: producers must block on admission
        .admission(Admission::Block)
        .max_batch(Some(3))
        .max_wait(Duration::from_micros(200))
        .workers(3)
        .shard_rows(Some(2))
        .row_tile_shards(Some(2))
        .build()
        .unwrap();
    let session = CimServer::new(registry, cfg).start();

    let outcomes = std::thread::scope(|sc| {
        let session = &session;
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                sc.spawn(move || {
                    let mut rng = CqRng::new(7000 + p);
                    let mut in_flight: Vec<(usize, Ticket)> = Vec::new();
                    for _ in 0..PER_PRODUCER {
                        let batch = [1, 1, 2, 5][rng.below(4)];
                        let slo = if rng.below(2) == 0 {
                            Slo::Latency
                        } else {
                            Slo::Bulk
                        };
                        let model = ids[rng.below(2)];
                        let x = request(&mut rng, batch);
                        let mut req = Request::to_id(model).batch(x).slo(slo);
                        if slo == Slo::Latency {
                            req = req.deadline(Duration::from_secs(30));
                        }
                        // Submission blocks when the 8-slot queue is
                        // full — producers and workers exercise the
                        // admission/linger/steal interleavings hard.
                        in_flight.push((batch, session.submit(req).unwrap()));
                    }
                    // Resolve through a producer-specific path mix.
                    match p % 4 {
                        0 => in_flight
                            .into_iter()
                            .map(|(b, t)| (b, t.wait()))
                            .collect::<Vec<_>>(),
                        1 => in_flight
                            .into_iter()
                            .map(|(b, mut t)| loop {
                                // try_wait spin (with yields): the pure
                                // polling path must observe every wakeup.
                                match t.try_wait() {
                                    Ok(done) => break (b, done),
                                    Err(back) => {
                                        t = back;
                                        std::thread::yield_now();
                                    }
                                }
                            })
                            .collect(),
                        2 => in_flight
                            .into_iter()
                            .map(|(b, mut t)| loop {
                                // Short-timeout block loop: mixes timed
                                // parking with re-polling.
                                match t.wait_timeout(Duration::from_millis(1)) {
                                    Ok(done) => break (b, done),
                                    Err(back) => t = back,
                                }
                            })
                            .collect(),
                        _ => {
                            // Condvar-backed multiplexer over all of this
                            // producer's tickets at once.
                            let mut set = CompletionSet::new();
                            let batches: Vec<usize> = in_flight
                                .into_iter()
                                .map(|(b, t)| {
                                    set.insert(t);
                                    b
                                })
                                .collect();
                            let mut done = Vec::new();
                            while let Some((key, completed)) = set.wait_any() {
                                done.push((batches[key.index()], completed));
                            }
                            done
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    let (stats, models) = session.shutdown();
    assert_eq!(models.len(), 2, "both models handed back");

    let total = (PRODUCERS as usize * PER_PRODUCER) as u64;
    assert_eq!(outcomes.len() as u64, total, "every ticket resolved");
    for (batch, completed) in &outcomes {
        assert_eq!(
            completed.output.dim(0),
            *batch,
            "output batch dim matches the request"
        );
        if completed.slo == Slo::Bulk {
            assert!(!completed.missed, "deadline-free bulk cannot miss");
        }
    }
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.rejected, 0, "Block admission never rejects");
    assert_eq!(stats.served, total);
    assert_eq!(
        stats.latency.served + stats.bulk.served,
        total,
        "per-class served covers every request"
    );
    assert_eq!(
        stats.latency.submitted + stats.bulk.submitted,
        total,
        "per-class submitted covers every request"
    );
    assert_eq!(stats.bulk.missed, 0, "deadline-free bulk cannot miss");
    assert_eq!(stats.bulk.with_deadline, 0);
    assert_eq!(
        stats.latency.with_deadline, stats.latency.served,
        "every latency ticket carried a deadline"
    );
    assert!(stats.latency.missed <= stats.latency.served);
    assert!(
        stats.peak_queue_depth <= 8,
        "capacity bound violated under stress"
    );
    assert!(
        stats.sharded_sweeps > 0,
        "batch-5 requests over shard_rows=2 must shard"
    );
}

/// One digitizer regime of the resolution-path matrix.
#[derive(Clone, Copy, Debug)]
enum Digitizer {
    /// Partial-sum quantization off (ideal infinite-precision converter).
    Ideal,
    /// Behavioural ADC on the trained psum scales.
    Adc,
    /// ADC plus weight-side log-normal device variation.
    Variation,
}

/// Every completion path — `wait`, `try_wait`, `wait_timeout`,
/// `CompletionSet::wait_any` — must return **bit-identical** outputs for
/// the same submission, and identical to the direct per-call engine,
/// across psum quantization {off, on} × weight/psum granularity ×
/// digitizer. The matrix runs one small CIM conv per cell as the served
/// model.
#[test]
fn resolution_paths_are_bit_exact_across_matrix() {
    let mut seed = 400;
    for w_gran in Granularity::ALL {
        for p_gran in Granularity::ALL {
            for dig in [Digitizer::Ideal, Digitizer::Adc, Digitizer::Variation] {
                check_cell(w_gran, p_gran, dig, seed);
                seed += 10;
            }
        }
    }

    fn check_cell(w_gran: Granularity, p_gran: Granularity, dig: Digitizer, seed: u64) {
        let mut rng = CqRng::new(seed);
        let mut layer = CimConv2d::new(
            7,
            5,
            3,
            1,
            1,
            CimConfig::tiny(),
            w_gran,
            p_gran,
            true,
            &mut rng,
        );
        match dig {
            Digitizer::Ideal => layer.set_psum_quant_enabled(false),
            Digitizer::Adc => {}
            Digitizer::Variation => layer.set_variation(Some(VariationCfg {
                mode: VariationMode::PerWeight,
                sigma: 0.15,
                seed: 77,
            })),
        }
        let x = CqRng::new(seed + 1)
            .normal_tensor(&[2, 7, 6, 6], 1.0)
            .map(|v| v.max(0.0));
        // Per-call reference (also initializes lazy scales).
        let want = layer.forward(&x, Mode::Eval);

        let mut registry = ModelRegistry::new();
        registry.register("conv", PreparedCimModel::new(Box::new(layer)));
        let session =
            CimServer::new(registry, ServeConfig::builder().workers(2).build().unwrap()).start();
        let submit = || {
            session
                .submit(Request::to("conv").batch(x.clone()))
                .unwrap()
        };
        // Path 1: blocking wait.
        let via_wait = submit().wait().output;
        // Path 2: try_wait spin.
        let mut t = submit();
        let via_try = loop {
            match t.try_wait() {
                Ok(done) => break done.output,
                Err(back) => {
                    t = back;
                    std::thread::yield_now();
                }
            }
        };
        // Path 3: wait_timeout loop.
        let mut t = submit();
        let via_timeout = loop {
            match t.wait_timeout(Duration::from_millis(1)) {
                Ok(done) => break done.output,
                Err(back) => t = back,
            }
        };
        // Path 4: CompletionSet::wait_any.
        let mut set = CompletionSet::new();
        set.insert(submit());
        let via_any = set.wait_any().unwrap().1.output;
        let (stats, _) = session.shutdown();
        assert_eq!(stats.served, 4);

        let cell = format!("w={w_gran} p={p_gran} dig={dig:?}");
        assert_eq!(via_wait, want, "wait diverged at {cell}");
        assert_eq!(via_try, want, "try_wait diverged at {cell}");
        assert_eq!(via_timeout, want, "wait_timeout diverged at {cell}");
        assert_eq!(via_any, want, "wait_any diverged at {cell}");
    }
}

/// One client thread multiplexes hundreds of in-flight tickets through a
/// single `CompletionSet`: every ticket is delivered exactly once with
/// its own output (keys map back to submissions), nothing is lost, and
/// the drain needs no per-ticket thread.
#[test]
fn completion_set_multiplexes_hundreds_in_flight() {
    const IN_FLIGHT: usize = 240;
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(75));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(IN_FLIGHT)
            .max_batch(Some(8))
            .workers(3)
            .build()
            .unwrap(),
    )
    .start();
    let mut rng = CqRng::new(76);
    let mut set = CompletionSet::new();
    let mut rows = Vec::with_capacity(IN_FLIGHT);
    for _ in 0..IN_FLIGHT {
        let b = 1 + rng.below(3);
        let key = set.insert(
            session
                .submit(Request::to("m").batch(request(&mut rng, b)))
                .unwrap(),
        );
        assert_eq!(key.index(), rows.len(), "keys are dense insertion order");
        rows.push(b);
    }
    assert_eq!(set.len(), IN_FLIGHT);
    let mut seen = vec![false; IN_FLIGHT];
    while let Some((key, done)) = set.wait_any_timeout(Duration::from_secs(60)) {
        assert!(!seen[key.index()], "ticket delivered twice");
        seen[key.index()] = true;
        assert_eq!(done.output.dim(0), rows[key.index()], "key↔output mapping");
    }
    assert!(set.is_empty(), "wait_any_timeout starved under load");
    assert!(seen.iter().all(|&s| s), "a ticket was lost");
    let (stats, _) = session.shutdown();
    assert_eq!(stats.served, IN_FLIGHT as u64);
}

/// The aging starvation bound: under a **sustained latency flood**, bulk
/// tickets submitted at the start are still served within `bulk_max_age`
/// plus one in-flight sweep — instead of starving until the flood ends.
/// The promotion counter proves the mechanism (not a lucky idle gap)
/// served them.
#[test]
fn bulk_starvation_is_bounded_under_latency_flood() {
    let bulk_max_age = Duration::from_millis(150);
    // Generous allowance for the sweep(s) already in flight when the age
    // trips (CI machines are slow); still far below the flood duration,
    // so meeting the bound proves bulk cut *through* the flood.
    let slack = Duration::from_millis(1000);
    let flood = Duration::from_millis(2000);

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(80));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(64)
            .admission(Admission::Block)
            .max_batch(Some(4))
            .max_wait(Duration::ZERO)
            .workers(1) // one worker: promotions must cut through it
            .bulk_max_age(bulk_max_age)
            .build()
            .unwrap(),
    )
    .start();

    // Two producers flood latency requests back-to-back (Block admission,
    // so the bounded queue stays full of latency work — the single worker
    // is saturated with no idle gaps for bulk to slip through). Bulk is
    // submitted only once the flood is established, so *only* the aging
    // promotion can serve it before the flood ends.
    let (bulk_waits, latency_done) = std::thread::scope(|sc| {
        let session = &session;
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                sc.spawn(move || {
                    let mut rng = CqRng::new(81 + p);
                    let mut tickets = Vec::new();
                    let t0 = Instant::now();
                    while t0.elapsed() < flood {
                        tickets.push(
                            session
                                .submit(
                                    Request::to("m")
                                        .batch(request(&mut rng, 1))
                                        .slo(Slo::Latency),
                                )
                                .unwrap(),
                        );
                    }
                    tickets
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(200)); // flood established
        let mut rng = CqRng::new(90);
        let bulk: Vec<(Instant, Ticket)> = (0..3)
            .map(|_| {
                // Block admission: submission may stall on the full
                // queue, but the aging clock starts at the submit call.
                let t = session
                    .submit(Request::to("m").batch(request(&mut rng, 1)).slo(Slo::Bulk))
                    .unwrap();
                (Instant::now(), t)
            })
            .collect();
        // Poll while the flood runs: record the first instant each bulk
        // ticket is observed served, relative to its own submission.
        let mut bulk_waits: Vec<Option<Duration>> = vec![None; bulk.len()];
        let poll_end = Instant::now() + flood;
        while bulk_waits.iter().any(|w| w.is_none()) && Instant::now() < poll_end {
            for (i, (at, t)) in bulk.iter().enumerate() {
                if bulk_waits[i].is_none() && t.is_ready() {
                    bulk_waits[i] = Some(at.elapsed());
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Drain everything: every latency ticket resolves (bounded waits
        // so a scheduler regression fails instead of hanging).
        let mut latency_set = CompletionSet::new();
        for h in producers {
            for t in h.join().unwrap() {
                latency_set.insert(t);
            }
        }
        let mut latency_done = 0u64;
        while let Some((_k, done)) = latency_set.wait_any_timeout(Duration::from_secs(60)) {
            assert_eq!(done.slo, Slo::Latency);
            latency_done += 1;
        }
        assert!(latency_set.is_empty(), "latency drain starved");
        for (_, t) in bulk {
            assert_eq!(t.wait().output.dim(0), 1);
        }
        (bulk_waits, latency_done)
    });
    for (i, ready) in bulk_waits.iter().enumerate() {
        let waited = ready.unwrap_or_else(|| {
            panic!("bulk ticket {i} starved through the whole {flood:?} latency flood")
        });
        assert!(
            waited <= bulk_max_age + slack,
            "bulk ticket {i} waited {waited:?}, bound is {bulk_max_age:?} + {slack:?}"
        );
    }
    let (stats, _) = session.shutdown();
    assert!(
        stats.aged_promotions >= 1,
        "the aging mechanism never fired: bulk was served by idle gaps only"
    );
    assert_eq!(stats.latency.served, latency_done);
    assert_eq!(stats.bulk.served, 3);
}

/// Priority ordering: with one worker pinned on a long bulk sweep, every
/// `Latency` ticket submitted afterwards completes before any `Bulk`
/// ticket that was submitted ≥ `max_wait` earlier than the latency batch
/// — the scheduler drains the whole latency class before returning to
/// queued bulk work (strict policy, no aging).
#[test]
fn latency_completes_before_stale_bulk() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(80));
    let max_wait = Duration::from_millis(1);
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(64)
            .admission(Admission::Block)
            .max_batch(Some(2))
            .max_wait(max_wait)
            .workers(1)
            .build()
            .unwrap(),
    );

    let t0 = Instant::now();
    let ((latency_done, bulk_done), stats) = server.serve(|s| {
        let rng = &mut CqRng::new(81);
        // A long plug occupies the single worker (32 rows, chunked into
        // 16 internal sweeps) while everything else is submitted.
        let plug = s.submit(Request::to("m").batch(request(rng, 32))).unwrap();
        // Stale bulk backlog, submitted well over `max_wait` before the
        // latency tickets below.
        let bulk: Vec<(Duration, Ticket)> = (0..6)
            .map(|_| {
                let t = s.submit(Request::to("m").batch(request(rng, 1))).unwrap();
                (t0.elapsed(), t)
            })
            .collect();
        std::thread::sleep(3 * max_wait);
        let latency: Vec<(Duration, Ticket)> = (0..6)
            .map(|_| {
                let t = s
                    .submit(Request::to("m").batch(request(rng, 1)).slo(Slo::Latency))
                    .unwrap();
                (t0.elapsed(), t)
            })
            .collect();
        let finish = |v: Vec<(Duration, Ticket)>| {
            v.into_iter()
                .map(|(at, t)| at + t.wait().latency)
                .collect::<Vec<Duration>>()
        };
        let latency_done = finish(latency);
        let bulk_done = finish(bulk);
        let _ = plug.wait();
        (latency_done, bulk_done)
    });

    let last_latency = latency_done.iter().max().unwrap();
    let first_bulk = bulk_done.iter().min().unwrap();
    assert!(
        last_latency < first_bulk,
        "a latency ticket completed after a bulk ticket submitted \
         ≥ max_wait earlier: last latency at {last_latency:?}, first bulk \
         at {first_bulk:?}"
    );
    assert_eq!(stats.latency.served, 6);
    assert_eq!(stats.bulk.served, 7);
    assert_eq!(stats.aged_promotions, 0, "strict policy never promotes");
}

/// Deadline-expired tickets still complete — with bit-exact outputs — but
/// carry the `Missed` status, and the per-class stats count them.
#[test]
fn expired_deadlines_complete_with_missed_status() {
    let mut reference = warmed_net(90);
    let rng = &mut CqRng::new(91);
    let plug_input = request(rng, 24);
    let inputs: Vec<Tensor> = (0..4).map(|_| request(rng, 1)).collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| reference.forward(x, Mode::Eval))
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(90));
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(64)
            .admission(Admission::Block)
            .max_batch(Some(2))
            .max_wait(Duration::ZERO)
            .workers(1)
            .build()
            .unwrap(),
    );
    let (outcomes, stats) = server.serve(|s| {
        // The plug guarantees the deadline below expires while queued.
        let plug = s
            .submit(Request::to("m").batch(plug_input.clone()))
            .unwrap();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| {
                s.submit(
                    Request::to("m")
                        .batch(x.clone())
                        .slo(Slo::Latency)
                        .deadline(Duration::ZERO),
                )
                .unwrap()
            })
            .collect();
        let done: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        let _ = plug.wait();
        done
    });
    for (completed, want) in outcomes.iter().zip(&want) {
        assert!(completed.missed, "zero deadline behind a plug must miss");
        assert_eq!(completed.slo, Slo::Latency);
        assert_eq!(&completed.output, want, "missed ticket output diverged");
    }
    assert_eq!(stats.latency.missed, 4);
    assert_eq!(stats.latency.served, 4);

    // A generous deadline under the same load does not miss.
    let (completed, stats) = server.serve(|s| {
        s.submit(
            Request::to("m")
                .batch(inputs[0].clone())
                .slo(Slo::Latency)
                .deadline(Duration::from_secs(600)),
        )
        .unwrap()
        .wait()
    });
    assert!(!completed.missed);
    assert_eq!(stats.latency.missed, 0);
}

/// A panicking shard executor must propagate: the failed join panics the
/// coordinating worker, which abandons its tickets, which panics the
/// waiting client — `serve` never deadlocks (the sharded extension of the
/// PR 3 close-on-unwind guarantee).
#[test]
#[should_panic]
fn panic_in_sharded_worker_propagates() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(95));
    let server = CimServer::new(
        registry,
        ServeConfig::builder()
            .workers(2)
            .shard_rows(Some(1))
            .build()
            .unwrap(),
    );
    let ((), _) = server.serve(|s| {
        // Wrong channel count on an oversized (sharded) request: every
        // shard executor's forward rejects it.
        let bad = Tensor::zeros(&[5, 5, 12, 12]);
        let t = s.submit(Request::to("m").batch(bad)).unwrap();
        let _ = t.wait(); // panics: the coordinator abandoned the ticket
    });
}

/// A worker panic in the **owned** flow propagates out of `shutdown`
/// (after every worker joined), and the abandoned ticket's resolution
/// panics too — the loud-failure contract survives the session redesign.
#[test]
fn owned_session_shutdown_propagates_worker_panics() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(96));
    let session =
        CimServer::new(registry, ServeConfig::builder().workers(1).build().unwrap()).start();
    let bad = Tensor::zeros(&[1, 5, 12, 12]); // wrong channel count
    let ticket = session.submit(Request::to("m").batch(bad)).unwrap();
    // The worker abandons the ticket while unwinding: waiting on it
    // panics instead of hanging.
    let wait_panics = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()));
    assert!(
        wait_panics.is_err(),
        "the abandoned ticket must panic its waiter"
    );
    let shutdown_panics =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.shutdown()));
    assert!(
        shutdown_panics.is_err(),
        "shutdown must re-raise the worker panic"
    );
}
