//! Hot-swap churn under multi-producer load: a live session keeps
//! serving while one thread repeatedly evicts the model behind a name
//! and registers a fresh version under it. The invariants pinned here:
//!
//! * **zero lost tickets** — every submitted ticket resolves, across
//!   every swap;
//! * **versioned bit-exactness** — each ticket's output is bit-identical
//!   to the standalone forward of the *version that served it* (the
//!   version its `ModelId` was resolved against at submit time);
//! * **recoverable unknown-model** — a producer racing an eviction gets
//!   `SubmitError::UnknownModel`, re-resolves, and carries on;
//! * **reclaim round-trip** — every evict ticket resolves with its
//!   drained `PreparedCimModel`, which then round-trips through
//!   `ModelRegistry::from_models` and serves bit-exactly again.

use cq_cim::CimConfig;
use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode, ResNet, ResNetSpec};
use cq_serve::{Admission, CimServer, ModelRegistry, Request, ServeConfig, SubmitError, Ticket};
use cq_tensor::{CqRng, Tensor};
use std::sync::Mutex;
use std::time::Duration;

/// Deterministic per seed: two calls yield bit-identical models.
fn warmed_net(seed: u64) -> ResNet {
    let mut net = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        seed,
    );
    let x = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&x, Mode::Eval);
    net
}

fn prepared(seed: u64) -> PreparedCimModel {
    PreparedCimModel::new(Box::new(warmed_net(seed)))
}

/// Like [`prepared`] but under an arbitrary quantization scheme.
fn prepared_with(seed: u64, scheme: &QuantScheme) -> PreparedCimModel {
    let mut net = build_cim_resnet(ResNetSpec::resnet8(4, 4), &CimConfig::tiny(), scheme, seed);
    let x = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&x, Mode::Eval);
    PreparedCimModel::new(Box::new(net))
}

/// Seed of the churned model's `version` build (version 0 is resident at
/// start; versions 1.. are hot-registered mid-load).
fn version_seed(version: usize) -> u64 {
    200 + version as u64
}

#[test]
fn hot_swap_churn_loses_nothing_and_stays_version_exact() {
    const PRODUCERS: usize = 3;
    const PER_PRODUCER: usize = 14;
    const SWAPS: usize = 3;

    let mut registry = ModelRegistry::new();
    registry.register("keep", prepared(99));
    let hot_v0 = registry.register("hot", prepared(version_seed(0)));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(8)
            .admission(Admission::Block)
            .max_batch(Some(3))
            .max_wait(Duration::from_micros(200))
            .workers(2)
            .build()
            .unwrap(),
    )
    .start();

    // The swapper publishes (version, id) of the live "hot" model here;
    // producers snapshot it per request and retry on the eviction race.
    let live_hot = Mutex::new((0usize, hot_v0));
    // (version, input, ticket) per "hot" submission, (usize::MAX, ..) for
    // "keep" ones — verified against the matching reference net below.
    type Submitted = (usize, Tensor, Ticket);
    let mut all: Vec<Submitted> = Vec::new();
    let mut reclaimed: Vec<(usize, PreparedCimModel)> = Vec::new();

    std::thread::scope(|scope| {
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let session = &session;
            let live_hot = &live_hot;
            producers.push(scope.spawn(move || {
                let rng = &mut CqRng::new(7000 + p as u64);
                let mut mine: Vec<Submitted> = Vec::new();
                for _ in 0..PER_PRODUCER {
                    let batch = 1 + rng.below(2);
                    let x = rng.normal_tensor(&[batch, 3, 12, 12], 1.0);
                    if rng.below(4) == 0 {
                        let t = session
                            .submit(Request::to("keep").batch(x.clone()))
                            .expect("stable model always admits");
                        mine.push((usize::MAX, x, t));
                        continue;
                    }
                    // Swap race: the id snapshot may be evicted before the
                    // submit lands — UnknownModel is recoverable, re-resolve
                    // and retry (bounded: the swapper re-registers the name
                    // immediately after every evict).
                    loop {
                        let (version, id) = *live_hot.lock().unwrap();
                        match session.submit(Request::to_id(id).batch(x.clone())) {
                            Ok(t) => {
                                mine.push((version, x, t));
                                break;
                            }
                            Err(SubmitError::UnknownModel(_)) => continue,
                            Err(e) => panic!("unexpected submit error: {e:?}"),
                        }
                    }
                }
                mine
            }));
        }

        // The swapper: evict the live "hot" version, immediately register
        // the next one under the same name, and keep the producers' id
        // snapshot fresh. Every evict ticket must hand its model back.
        let swapper = scope.spawn(|| {
            let mut got = Vec::new();
            for version in 1..=SWAPS {
                std::thread::sleep(Duration::from_millis(15));
                let evict = session.evict("hot").expect("hot model is live");
                let id = session
                    .register("hot", prepared(version_seed(version)))
                    .expect("evicted name is immediately reusable");
                *live_hot.lock().unwrap() = (version, id);
                let model = match evict.wait_timeout(Duration::from_secs(60)) {
                    Ok(m) => m,
                    Err(_) => panic!("evict ticket resolves once in-flight work drains"),
                };
                got.push((version - 1, model));
            }
            got
        });

        for p in producers {
            all.extend(p.join().unwrap());
        }
        reclaimed = swapper.join().unwrap();
    });

    // Zero lost tickets: every submission resolves, bit-exact against the
    // version that served it.
    let submitted = all.len();
    assert_eq!(submitted, PRODUCERS * PER_PRODUCER);
    let mut keep_ref = warmed_net(99);
    let mut hot_refs: Vec<ResNet> = (0..=SWAPS).map(|v| warmed_net(version_seed(v))).collect();
    for (version, x, ticket) in all {
        let done = ticket.wait();
        let want = if version == usize::MAX {
            keep_ref.forward(&x, Mode::Eval)
        } else {
            hot_refs[version].forward(&x, Mode::Eval)
        };
        assert_eq!(done.output, want, "output diverged from serving version");
    }

    let (stats, models) = session.shutdown();
    assert_eq!(stats.served, submitted as u64, "every ticket fulfilled");
    assert_eq!(stats.hot_registered, SWAPS as u64);
    assert_eq!(stats.evictions, SWAPS as u64);
    let names: Vec<&str> = models.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        ["keep", "hot"],
        "shutdown hands back only the live models"
    );

    // Reclaimed versions round-trip through `from_models` unchanged: a
    // fresh session over the evicted model still serves bit-exactly.
    assert_eq!(reclaimed.len(), SWAPS, "every evict ticket delivered");
    for (version, model) in reclaimed {
        let registry = ModelRegistry::from_models(vec![("hot".to_string(), model)]);
        let server = CimServer::new(registry, ServeConfig::builder().workers(1).build().unwrap());
        let x = CqRng::new(version_seed(version) + 77).normal_tensor(&[2, 3, 12, 12], 1.0);
        let want = hot_refs[version].forward(&x, Mode::Eval);
        let (got, _) = server.serve(|s| {
            s.submit(Request::to("hot").batch(x.clone()))
                .unwrap()
                .wait()
                .output
        });
        assert_eq!(got, want, "reclaimed v{version} diverged after round-trip");
    }
}

/// Evicting while idle resolves the ticket immediately; the name becomes
/// unknown to new submissions the moment `evict` returns.
#[test]
fn evict_on_idle_session_is_immediate_and_unroutable() {
    let mut registry = ModelRegistry::new();
    registry.register("a", prepared(300));
    registry.register("b", prepared(301));
    let session =
        CimServer::new(registry, ServeConfig::builder().workers(1).build().unwrap()).start();

    let ticket = session.evict("a").unwrap();
    assert!(ticket.is_ready(), "idle model drains instantly");
    let x = CqRng::new(1).normal_tensor(&[1, 3, 12, 12], 1.0);
    match session.submit(Request::to("a").batch(x.clone())) {
        Err(SubmitError::UnknownModel(name)) => assert_eq!(name, "a"),
        other => panic!("evicted name must be unroutable, got {other:?}"),
    }
    // Recovery: the caller falls back to the surviving model.
    let done = session
        .submit(Request::to("b").batch(x.clone()))
        .unwrap()
        .wait();
    assert_eq!(done.output, warmed_net(301).forward(&x, Mode::Eval));
    let model = match ticket.try_wait() {
        Ok(m) => m,
        Err(_) => panic!("already resolved"),
    };
    drop(model);

    let (stats, models) = session.shutdown();
    assert_eq!(stats.evictions, 1);
    assert_eq!(models.len(), 1, "only 'b' is still resident");
}

/// A pending evict ticket is still delivered when the session shuts down
/// before the name sees more traffic — shutdown is the delivery backstop.
#[test]
fn shutdown_delivers_pending_evict_tickets() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(310));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .workers(1)
            .max_batch(Some(1))
            .build()
            .unwrap(),
    )
    .start();
    let x = CqRng::new(2).normal_tensor(&[1, 3, 12, 12], 1.0);
    let id = session.model_id("m").unwrap();
    let ticket = session.submit(Request::to_id(id).batch(x)).unwrap();
    let evict = session.evict("m").unwrap();
    // The in-flight request drains and delivers; either way, after
    // shutdown the ticket must be resolved.
    let _ = ticket.wait();
    let (stats, models) = session.shutdown();
    assert_eq!(stats.served, 1);
    assert!(models.is_empty(), "evicted model is not handed back twice");
    let model = match evict.wait_timeout(Duration::from_secs(5)) {
        Ok(m) => m,
        Err(_) => panic!("shutdown delivers the reclaim"),
    };
    drop(model);
}

#[test]
fn duplicate_name_and_unknown_evict_hand_errors_back() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(320));
    let session =
        CimServer::new(registry, ServeConfig::builder().workers(1).build().unwrap()).start();
    match session.register("m", prepared(321)) {
        Err(cq_serve::SwapError::DuplicateName {
            name,
            existing_scheme,
            model,
        }) => {
            assert_eq!(name, "m");
            assert_eq!(existing_scheme, "paper-lsq-column");
            drop(model); // the rejected model is handed back intact
        }
        other => panic!("duplicate live name must be rejected, got {other:?}"),
    }
    // Same name under a *different* scheme: still the recoverable
    // duplicate error — never a silent overwrite — and the error
    // attributes the scheme of the live holder, not the offered model.
    match session.register("m", prepared_with(322, &QuantScheme::bwma())) {
        Err(cq_serve::SwapError::DuplicateName {
            name,
            existing_scheme,
            model,
        }) => {
            assert_eq!(name, "m");
            assert_eq!(existing_scheme, "paper-lsq-column");
            drop(model);
        }
        other => panic!("cross-scheme duplicate must be rejected, got {other:?}"),
    }
    match session.evict("ghost") {
        Err(cq_serve::SwapError::UnknownModel(name)) => assert_eq!(name, "ghost"),
        other => panic!("unknown evict must be recoverable, got {other:?}"),
    }
    let (stats, models) = session.shutdown();
    assert_eq!(stats.hot_registered, 0);
    assert_eq!(models.len(), 1);
}

/// Hot-swap **across quantization schemes**: the paper-scheme model is
/// evicted and a BWMA model takes over its name mid-load. Pinned: zero
/// lost tickets, per-version bit-exactness (each ticket matches the
/// standalone forward of the scheme/version that served it), and the
/// final stats attribute images to both schemes.
#[test]
fn cross_scheme_hot_swap_stays_version_exact_and_attributes_schemes() {
    let mut registry = ModelRegistry::new();
    let v0 = registry.register("hot", prepared_with(400, &QuantScheme::ours()));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .queue_capacity(8)
            .max_batch(Some(2))
            .workers(2)
            .build()
            .unwrap(),
    )
    .start();

    let rng = &mut CqRng::new(8100);
    let mut before = Vec::new();
    for _ in 0..5 {
        let x = rng.normal_tensor(&[1, 3, 12, 12], 1.0);
        let t = session.submit(Request::to_id(v0).batch(x.clone())).unwrap();
        before.push((x, t));
    }

    // Swap the name over to a *different scheme* while tickets resolve.
    let evict = session.evict("hot").unwrap();
    let v1 = session
        .register("hot", prepared_with(401, &QuantScheme::bwma()))
        .expect("evicted name is reusable under a new scheme");
    assert_eq!(session.registry().scheme(v1), "bwma");
    let reclaimed = evict
        .wait_timeout(Duration::from_secs(60))
        .expect("v0 drains");

    let mut after = Vec::new();
    for _ in 0..5 {
        let x = rng.normal_tensor(&[1, 3, 12, 12], 1.0);
        let t = session.submit(Request::to_id(v1).batch(x.clone())).unwrap();
        after.push((x, t));
    }

    // Zero lost tickets, each bit-exact against the version that served it.
    let mut ref_v0 = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        400,
    );
    let warm = CqRng::new(1400).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = ref_v0.forward(&warm, Mode::Eval);
    let mut ref_v1 = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::bwma(),
        401,
    );
    let warm = CqRng::new(1401).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = ref_v1.forward(&warm, Mode::Eval);
    for (x, t) in before {
        assert_eq!(t.wait().output, ref_v0.forward(&x, Mode::Eval));
    }
    for (x, t) in after {
        assert_eq!(t.wait().output, ref_v1.forward(&x, Mode::Eval));
    }
    drop(reclaimed);

    let (stats, _models) = session.shutdown();
    assert_eq!(stats.served, 10, "zero lost tickets across the scheme swap");
    let by_scheme = stats.images_by_scheme();
    let images_of = |name: &str| {
        by_scheme
            .iter()
            .find(|(s, _)| s == name)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert_eq!(images_of("paper-lsq-column"), 5);
    assert_eq!(images_of("bwma"), 5);
    for m in &stats.models {
        assert!(!m.scheme.is_empty(), "session overlays scheme attribution");
    }
    let prom = stats.render_prometheus();
    assert!(prom.contains("cq_serve_scheme_images_total{scheme=\"bwma\"} 5"));
    assert!(prom.contains("scheme=\"paper-lsq-column\""));
}

/// A non-empty `scheme_allowlist` refuses out-of-list schemes on live
/// registration with a recoverable error that hands the model back;
/// allowed schemes register normally.
#[test]
fn scheme_allowlist_gates_live_registration_recoverably() {
    let mut registry = ModelRegistry::new();
    registry.register("seed", prepared(409));
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .workers(1)
            .scheme_allowlist(["paper-lsq-column"])
            .build()
            .unwrap(),
    )
    .start();

    let model = match session.register("m", prepared_with(410, &QuantScheme::bwma())) {
        Err(cq_serve::SwapError::SchemeNotAllowed { scheme, model }) => {
            assert_eq!(scheme, "bwma");
            model // handed back untouched — reusable elsewhere
        }
        other => panic!("out-of-list scheme must be refused, got {other:?}"),
    };
    drop(model);

    session
        .register("m", prepared_with(411, &QuantScheme::ours()))
        .expect("allowlisted scheme registers");
    let x = CqRng::new(5).normal_tensor(&[1, 3, 12, 12], 1.0);
    let done = session.submit(Request::to("m").batch(x)).unwrap().wait();
    assert_eq!(done.output.shape(), &[1, 4]);
    let (stats, models) = session.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(models.len(), 2, "seed model and the allowlisted register");
}
