//! CqRng-driven property tests for per-tenant weighted-fair scheduling
//! and admission quotas (the workspace is dependency-free, so the
//! property harness is a seeded loop over randomized scenarios):
//!
//! * under saturation, each tenant's served share converges to its
//!   weight share (measured at a completion cut where every tenant still
//!   has backlog — total drainage would trivially equalize shares);
//! * an in-flight quota is never exceeded at any scheduler step
//!   (`peak_in_flight` is tracked by the queue at every transition), and
//!   quota rejections are recoverable — retrying producers eventually
//!   get every request served.

use cq_cim::CimConfig;
use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode, ResNetSpec};
use cq_serve::{
    Admission, CimServer, CompletionSet, ModelRegistry, Request, ServeConfig, SubmitError,
    TenantSpec,
};
use cq_tensor::{CqRng, Tensor};
use std::time::Duration;

fn prepared(seed: u64) -> PreparedCimModel {
    let mut net = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        seed,
    );
    let x = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&x, Mode::Eval);
    PreparedCimModel::new(Box::new(net))
}

fn input(rng: &mut CqRng) -> Tensor {
    rng.normal_tensor(&[1, 3, 12, 12], 1.0)
}

/// Random tenant mixes and weights: at a cut where every tenant still
/// has queued backlog, served counts track weight shares.
#[test]
fn served_share_converges_to_weight_share_under_saturation() {
    const PER_TENANT: usize = 24;
    let weight_choices = [1.0f32, 2.0, 4.0];
    for trial in 0..3u64 {
        let rng = &mut CqRng::new(4000 + trial);
        let n_tenants = 2 + rng.below(2); // 2..=3
        let weights: Vec<f32> = (0..n_tenants)
            .map(|_| weight_choices[rng.below(weight_choices.len())])
            .collect();
        let names: Vec<String> = (0..n_tenants).map(|i| format!("t{i}")).collect();

        let mut builder = ServeConfig::builder()
            .queue_capacity(n_tenants * PER_TENANT + 4)
            .admission(Admission::Block)
            // One worker, one request per sweep: every service decision is
            // a WFQ pick, so shares are purely the scheduler's doing.
            .workers(1)
            .max_batch(Some(1))
            .max_wait(Duration::ZERO);
        for (name, w) in names.iter().zip(&weights) {
            builder = builder.tenant(TenantSpec::new(name.clone()).weight(*w));
        }
        let mut registry = ModelRegistry::new();
        registry.register("m", prepared(40 + trial));
        let session = CimServer::new(registry, builder.build().unwrap()).start();

        // Interleave submissions round-robin so no tenant gets a
        // first-mover backlog advantage.
        let mut inflight = CompletionSet::new();
        let mut tenant_of: Vec<usize> = Vec::new();
        for _ in 0..PER_TENANT {
            for (i, name) in names.iter().enumerate() {
                let t = session
                    .submit(Request::to("m").batch(input(rng)).tenant(name.clone()))
                    .unwrap();
                inflight.insert(t);
                tenant_of.push(i);
            }
        }

        // Cut where the fastest tenant has served at most ~80% of its
        // backlog — every tenant is still saturated up to the cut.
        let total_w: f32 = weights.iter().sum();
        let max_share = weights.iter().fold(0.0f32, |a, &w| a.max(w)) / total_w;
        let cut = ((0.8 * PER_TENANT as f32 / max_share) as usize).min(n_tenants * PER_TENANT);
        let mut served = vec![0usize; n_tenants];
        for _ in 0..cut {
            let (key, _) = inflight.wait_any().expect("tickets outstanding");
            served[tenant_of[key.index()]] += 1;
        }
        // Drain the rest before shutdown so the session ends clean.
        while inflight.wait_any().is_some() {}
        let (stats, _) = session.shutdown();
        assert_eq!(stats.served as usize, n_tenants * PER_TENANT);

        for (i, (&got, &w)) in served.iter().zip(&weights).enumerate() {
            let want = w / total_w;
            let got_share = got as f64 / cut as f64;
            // The scheduler is deterministic; the slack only covers the
            // startup transient (requests served while the queue filled).
            assert!(
                (got_share - f64::from(want)).abs() < 0.15,
                "trial {trial} tenant {i}: served share {got_share:.3} vs \
                 weight share {want:.3} (weights {weights:?}, cut {cut})"
            );
        }
    }
}

/// Random in-flight and queued quotas: `QuotaExceeded` fires immediately
/// (even under Block admission), `peak_in_flight` never exceeds the
/// quota at any step, and retrying producers get everything served.
#[test]
fn quotas_bound_in_flight_at_every_step_and_reject_recoverably() {
    const REQUESTS: usize = 18;
    for trial in 0..3u64 {
        let rng = &mut CqRng::new(5000 + trial);
        let max_in_flight = 1 + rng.below(3); // 1..=3
        let max_queued = 1 + rng.below(2); // 1..=2, <= max_in_flight path too
        let cfg = ServeConfig::builder()
            .queue_capacity(32)
            .admission(Admission::Block)
            .workers(1)
            .max_batch(Some(2))
            .max_wait(Duration::ZERO)
            .tenant(
                TenantSpec::new("capped")
                    .weight(1.0)
                    .max_in_flight(max_in_flight)
                    .max_queued(max_queued),
            )
            .tenant(TenantSpec::new("open").weight(1.0))
            .build()
            .unwrap();
        let mut registry = ModelRegistry::new();
        registry.register("m", prepared(60 + trial));
        let session = CimServer::new(registry, cfg).start();

        let mut quota_hits = 0u64;
        let mut tickets = Vec::new();
        for i in 0..REQUESTS {
            // Background traffic from the unquota'd tenant keeps the
            // worker busy so the capped tenant actually queues.
            if i % 3 == 0 {
                tickets.push(
                    session
                        .submit(Request::to("m").batch(input(rng)).tenant("open"))
                        .unwrap(),
                );
            }
            // The capped tenant retries until admitted: QuotaExceeded is
            // immediate (never blocks) and hands the input back.
            let mut x = input(rng);
            loop {
                match session.submit(Request::to("m").batch(x).tenant("capped")) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(SubmitError::QuotaExceeded { tenant, input }) => {
                        assert_eq!(tenant, "capped");
                        quota_hits += 1;
                        x = input; // recovered intact
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    Err(e) => panic!("unexpected submit error: {e:?}"),
                }
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        let (stats, _) = session.shutdown();

        let capped = stats
            .tenants
            .iter()
            .find(|t| t.name == "capped")
            .expect("capped tenant tracked");
        assert_eq!(capped.served, REQUESTS as u64, "every retry got through");
        assert!(
            capped.peak_in_flight <= max_in_flight,
            "trial {trial}: peak in-flight {} exceeded quota {max_in_flight}",
            capped.peak_in_flight
        );
        assert_eq!(
            capped.quota_rejected, quota_hits,
            "queue and client agree on rejection count"
        );
        assert!(
            quota_hits > 0,
            "trial {trial}: saturation never hit quota {max_in_flight}/{max_queued}"
        );
        assert_eq!(stats.quota_rejected, quota_hits, "global counter matches");
    }
}

/// An unknown tenant tag is admitted with weight 1 and no quotas (the
/// create-on-first-sight path), and shows up in the stats snapshot.
#[test]
fn unknown_tenants_are_admitted_with_defaults() {
    let mut registry = ModelRegistry::new();
    registry.register("m", prepared(70));
    let session =
        CimServer::new(registry, ServeConfig::builder().workers(1).build().unwrap()).start();
    let rng = &mut CqRng::new(71);
    let t = session
        .submit(Request::to("m").batch(input(rng)).tenant("walk-in"))
        .unwrap();
    let _ = t.wait();
    let (stats, _) = session.shutdown();
    let walk_in = stats
        .tenants
        .iter()
        .find(|t| t.name == "walk-in")
        .expect("unknown tenant tracked on first sight");
    assert_eq!(walk_in.weight, 1.0);
    assert_eq!(walk_in.served, 1);
    assert_eq!(walk_in.quota_rejected, 0);
}
