//! Sweep every weight × partial-sum granularity combination (the paper's
//! Fig. 7 axis) on one small setting, and show the dequantization
//! overhead each combination costs (Fig. 8 axis).
//!
//! Run with `cargo run --release --example granularity_sweep`.

use column_quant::cim::{dequant_mults, overhead_class};
use column_quant::core::model_dequant_mults;
use column_quant::data::generate;
use column_quant::{
    build_cim_resnet, train_with_scheme, CimConfig, Granularity, QuantScheme, ResNetSpec,
    SyntheticSpec, TilingPlan, TrainConfig,
};

fn main() {
    let mut cim = CimConfig::cifar10();
    cim.array_rows = 32;
    cim.array_cols = 32;
    let spec = SyntheticSpec {
        image_size: 12,
        train_per_class: 16,
        test_per_class: 8,
        ..SyntheticSpec::cifar10_like(16, 8, 3)
    };
    let (train_ds, test_ds) = generate(&spec);
    let model = ResNetSpec::resnet8(10, 6);
    let cfg = TrainConfig::quick(4, 5);

    // Per-layer overhead of a representative (widest) layer.
    let w = *model.stage_widths.last().unwrap();
    let plan = TilingPlan::new(&cim, w, w, 3, 3);

    println!("| combo (W/P) | overhead class | mults/layer | model mults | top-1 |");
    println!("|---|---|---|---|---|");
    for wg in Granularity::ALL {
        for pg in Granularity::ALL {
            let scheme = QuantScheme::custom(wg, pg);
            let mut net = build_cim_resnet(model.clone(), &cim, &scheme, 11);
            let model_mults = model_dequant_mults(&mut net);
            let result = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
            println!(
                "| {} | {:?} | {} | {} | {:.1}% |",
                scheme.label,
                overhead_class(wg, pg),
                dequant_mults(&plan, wg, pg),
                model_mults,
                100.0 * result.final_test_acc()
            );
        }
    }
    println!();
    println!(
        "Note how C/C sits in the same overhead class as L/C — column-wise \
         weights are free once partial sums are column-wise (paper Fig. 4d/8)."
    );
}
