//! Variation-robustness comparison (paper Fig. 10, condensed): train the
//! paper's column/column scheme and the strongest prior (layer-wise
//! weights + column-wise partial sums, two-stage QAT), then sweep
//! log-normal memory-cell variation and compare accuracy degradation.
//!
//! Run with `cargo run --release --example variation_robustness`.

use column_quant::data::generate;
use column_quant::train::evaluate;
use column_quant::{
    build_cim_resnet, set_variation, train_with_scheme, CimConfig, QuantScheme, ResNetSpec,
    SyntheticSpec, TrainConfig, VariationMode,
};

fn main() {
    let mut cim = CimConfig::cifar10();
    cim.array_rows = 32;
    cim.array_cols = 32;
    let spec = SyntheticSpec {
        image_size: 12,
        train_per_class: 20,
        test_per_class: 10,
        ..SyntheticSpec::cifar10_like(20, 10, 13)
    };
    let (train_ds, test_ds) = generate(&spec);
    let cfg = TrainConfig::quick(5, 17);

    let schemes = [QuantScheme::saxena9(), QuantScheme::ours()];
    let sigmas = [0.0f32, 0.05, 0.10, 0.15, 0.20, 0.25];

    println!(
        "| scheme | {} |",
        sigmas.map(|s| format!("σ={s:.2}")).join(" | ")
    );
    println!("|---|{}|", "---|".repeat(sigmas.len()));
    for scheme in schemes {
        let mut net = build_cim_resnet(ResNetSpec::resnet8(10, 6), &cim, &scheme, 19);
        let _ = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
        let mut cells = Vec::new();
        for &sigma in &sigmas {
            // Average over 3 noise draws (per paper Eq. 5, per-weight).
            let mut acc = 0.0;
            for seed in 0..3u64 {
                set_variation(
                    &mut net,
                    (sigma > 0.0).then_some(sigma),
                    VariationMode::PerWeight,
                    100 + seed,
                );
                acc += evaluate(&mut net, &test_ds, 32);
            }
            set_variation(&mut net, None, VariationMode::PerWeight, 0);
            cells.push(format!("{:.1}%", 100.0 * acc / 3.0));
        }
        println!("| {} | {} |", scheme.label, cells.join(" | "));
    }
    println!();
    println!(
        "Independent column-wise scale factors keep the quantization grid \
         matched to each column's weights, which is what preserves accuracy \
         under multiplicative cell noise (paper Sec. IV-E)."
    );
}
