//! Map a ResNet onto CIM macros and print the accelerator-level resource
//! report: arrays, programmed cells, ADC conversions, dequantization
//! multiplications, and tiling utilization per layer — then save/restore
//! the model through a checkpoint.
//!
//! Run with `cargo run --release --example accelerator_report`.

use column_quant::core::{accelerator_report, load_cim_checkpoint, save_cim_checkpoint};
use column_quant::tensor::CqRng;
use column_quant::{build_cim_resnet, CimConfig, Layer, Mode, QuantScheme, ResNetSpec};

fn main() -> std::io::Result<()> {
    // The paper's CIFAR-10 macro (128x128 arrays, 3b weights on 1b cells)
    // hosting a width-reduced ResNet-20.
    let cim = CimConfig::cifar10();
    let scheme = QuantScheme::ours();
    let spec = ResNetSpec::resnet20(10).scaled_width(1, 2);
    let mut net = build_cim_resnet(spec, &cim, &scheme, 0);

    println!("# Accelerator mapping — ResNet-20(w/2) on 128x128 CIM arrays\n");
    println!("{}", accelerator_report(&mut net));

    // Initialize quantizer scales with one forward pass, then round-trip a
    // checkpoint and prove the restore is exact.
    let x = CqRng::new(1).normal_tensor(&[1, 3, 32, 32], 1.0);
    let y = net.forward(&x, Mode::Eval);
    let path = std::env::temp_dir().join("cq_accel_example.cqnn");
    save_cim_checkpoint(&mut net, &path)?;
    let mut restored = build_cim_resnet(
        ResNetSpec::resnet20(10).scaled_width(1, 2),
        &cim,
        &scheme,
        999, // different init — fully overwritten by the checkpoint
    );
    load_cim_checkpoint(&mut restored, &path)?;
    assert_eq!(restored.forward(&x, Mode::Eval), y);
    println!("checkpoint round-trip: bit-exact ✓ ({})", path.display());
    std::fs::remove_file(&path).ok();
    Ok(())
}
