//! Quickstart: train a small ResNet with column-wise weight and
//! partial-sum quantization (the paper's scheme) on a synthetic
//! CIFAR-like task, then report accuracy and dequantization overhead —
//! and run a non-paper scheme from the zoo (BWMA, binary ±1 weights)
//! through the same QAT → freeze → serve path.
//!
//! Run with `cargo run --release --example quickstart`.

use column_quant::core::{model_dequant_mults, PreparedCimModel};
use column_quant::data::generate;
use column_quant::nn::{Layer, Mode};
use column_quant::tensor::CqRng;
use column_quant::{
    build_cim_resnet, train_with_scheme, CimConfig, QuantScheme, ResNetSpec, SyntheticSpec,
    TrainConfig,
};

fn main() {
    // 1. A CIM macro: 32×32 arrays, 3-bit weights on 1-bit cells
    //    (3 bit-splits), 3-bit activations, 3-bit ADCs.
    let cim = CimConfig::tiny();

    // 2. A synthetic 10-class dataset standing in for CIFAR-10.
    let spec = SyntheticSpec {
        num_classes: 10,
        image_size: 12,
        train_per_class: 24,
        test_per_class: 12,
        ..SyntheticSpec::cifar10_like(24, 12, 7)
    };
    let (train_ds, test_ds) = generate(&spec);

    // 3. The paper's scheme: column-wise weights AND partial sums,
    //    one-stage QAT, learnable scale factors everywhere.
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(ResNetSpec::resnet8(10, 6), &cim, &scheme, 1);

    println!("scheme: {} ({})", scheme.label, scheme.method);
    println!(
        "dequantization multiplications across CIM layers: {}",
        model_dequant_mults(&mut net)
    );

    // 4. Train. Small batches give this tiny dataset enough SGD updates
    //    per epoch for the quantized pipeline to converge.
    let mut cfg = TrainConfig::quick(12, 2);
    cfg.batch_size = 8;
    let result = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
    for rec in &result.history {
        println!(
            "epoch {:>2}  loss {:.3}  train {:.1}%  test {:.1}%  ({:.1}s)",
            rec.epoch,
            rec.train_loss,
            100.0 * rec.train_acc,
            100.0 * rec.test_acc,
            rec.cumulative_seconds
        );
    }
    println!(
        "final top-1: {:.2}% (chance = {:.1}%)",
        100.0 * result.final_test_acc(),
        100.0 / 10.0
    );
    assert!(
        result.best_test_acc > 0.25,
        "training should clearly beat 10% chance"
    );

    // 5. A non-paper scheme from the zoo, end-to-end: BWMA quantizes
    //    weights to a single ±1 bit-split (always integer-eligible at
    //    freeze time), trains through the same one-stage QAT, and serves
    //    through the frozen engine bit-identically to the live forward.
    let scheme = QuantScheme::bwma();
    let mut net = build_cim_resnet(ResNetSpec::resnet8(10, 6), &cim, &scheme, 2);
    println!("\nscheme: {} ({})", scheme.label, scheme.method);
    let result = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
    println!(
        "BWMA final top-1: {:.2}% after {} epochs",
        100.0 * result.final_test_acc(),
        result.history.len()
    );
    let probe = CqRng::new(42)
        .normal_tensor(&[1, 3, 12, 12], 1.0)
        .map(|v| v.max(0.0));
    let want = net.forward(&probe, Mode::Eval);
    let mut served = PreparedCimModel::new(Box::new(net));
    assert_eq!(
        served.infer(&probe),
        want,
        "frozen BWMA engine must match the live forward bit-for-bit"
    );
    let (int_convs, total_convs) = served.count_integer_kernels();
    println!(
        "BWMA frozen engine: bit-exact vs live forward, integer kernels \
         active in {int_convs}/{total_convs} convs"
    );
}
