//! Program a trained, quantized convolution onto explicit crossbar arrays
//! and run it column by column: ADCs referenced to the learned scale
//! factors, shift-and-add over bit-splits, merged `s_w·s_p` dequantization.
//! Demonstrates (1) bit-exactness against the fast training-time emulation
//! and (2) the effect of per-cell device variation.
//!
//! Run with `cargo run --release --example crossbar_inference`.

use column_quant::tensor::CqRng;
use column_quant::{CimConfig, CimConv2d, CrossbarLayer, Granularity, Layer, Mode};

fn main() {
    let cfg = CimConfig::tiny(); // 32×32 arrays, 3b weights on 1b cells
    let mut rng = CqRng::new(42);

    // A quantized conv layer: 7 input channels -> 3 row tiles of 3
    // channels each (kernel-intact tiling), 5 output channels.
    let mut layer = CimConv2d::new(
        7,
        5,
        3,
        1,
        1,
        cfg,
        Granularity::Column,
        Granularity::Column,
        false,
        &mut rng,
    );
    let x = rng.normal_tensor(&[1, 7, 8, 8], 1.0).map(|v| v.max(0.0));

    // Fast emulation path (what QAT trains through).
    let fast = layer.forward(&x, Mode::Eval);

    // Export to the hardware-shaped engine and program the arrays.
    let desc = layer.to_quantized_conv();
    let plan = desc.plan.clone();
    let engine = CrossbarLayer::new(desc);
    println!(
        "programmed {} arrays ({} row tiles × {} col tiles), {} cells, {} splits/weight",
        engine.arrays().len(),
        plan.num_row_tiles,
        plan.num_col_tiles,
        engine.programmed_cells(),
        plan.num_splits,
    );

    // Drive the engine with the same quantized activations.
    let a_int = layer.quantize_activations(&x);
    let slow = engine.forward(&a_int);
    assert_eq!(
        fast, slow,
        "crossbar engine must be bit-exact at zero variation"
    );
    println!("bit-exact: fast emulation == crossbar engine ✓");

    // Now with per-cell log-normal variation (paper Eq. 5).
    for sigma in [0.05f32, 0.15, 0.25] {
        let mut noisy = CrossbarLayer::new(layer.to_quantized_conv());
        noisy.apply_variation(sigma, &mut CqRng::new(7));
        let y = noisy.forward(&a_int);
        println!(
            "σ = {sigma:.2}: max |Δoutput| = {:.4} (relative {:.1}%)",
            y.max_abs_diff(&fast),
            100.0 * y.max_abs_diff(&fast) / fast.max_abs()
        );
    }
}
